#include "core/exma_table.hh"

#include <algorithm>

#include "common/branchless.hh"
#include "common/logging.hh"
#include "compress/chain.hh"
#include "fmindex/suffix_array.hh"

namespace exma {

ExmaTable::ExmaTable(const std::vector<Base> &ref, const Config &cfg)
    : cfg_(cfg)
{
    build(ref);
}

ExmaTable::ExmaTable(const std::vector<Base> &ref,
                     std::vector<TextSegment> segments, const Config &cfg)
    : cfg_(cfg), segments_(std::move(segments))
{
    validateSegments(segments_, ref.size());
    const std::vector<Base> local = extractSegments(ref, segments_);
    build(local);
}

ExmaTable::ExmaTable(Parts parts)
    : cfg_(parts.cfg), segments_(std::move(parts.segments))
{
    fm_ = std::make_unique<FmIndex>(std::move(parts.fm));
    occ_ = std::make_unique<KmerOccTable>(std::move(parts.occ));
    exma_assert(fm_->size() == occ_->rows(),
                "table restore: FM-index and occ table disagree on rows");
    switch (cfg_.mode) {
        case OccIndexMode::Exact:
            break;
        case OccIndexMode::NaiveLearned:
            exma_assert(parts.naive.has_value(),
                        "table restore: naive-mode table lacks models");
            naive_ = std::make_unique<NaiveKmerIndex>(
                *occ_, cfg_.naive, std::move(*parts.naive));
            break;
        case OccIndexMode::Mtl:
            exma_assert(parts.mtl.has_value(),
                        "table restore: MTL-mode table lacks models");
            mtl_ = std::make_unique<MtlIndex>(*occ_,
                                              std::move(*parts.mtl));
            break;
    }
}

void
ExmaTable::build(const std::vector<Base> &ref)
{
    const std::vector<SaIndex> sa = buildSuffixArray(ref);
    fm_ = std::make_unique<FmIndex>(ref, sa, cfg_.fm);
    occ_ = std::make_unique<KmerOccTable>(ref, sa, cfg_.k);
    switch (cfg_.mode) {
        case OccIndexMode::Exact:
            break;
        case OccIndexMode::NaiveLearned:
            naive_ = std::make_unique<NaiveKmerIndex>(*occ_, cfg_.naive);
            break;
        case OccIndexMode::Mtl:
            mtl_ = std::make_unique<MtlIndex>(*occ_, cfg_.mtl);
            break;
    }
}

std::vector<u64>
ExmaTable::locateAllGlobal(const Interval &iv, u64 query_len,
                           u64 limit) const
{
    // Locate everything first: in a segment-mapped table the junction
    // filter decides which occurrences are real, so an early cap would
    // let artifacts crowd genuine positions out of the budget.
    std::vector<u64> local = fm_->locateAll(iv);
    std::vector<u64> out;
    if (segments_.empty()) {
        out = std::move(local);
    } else {
        out.reserve(local.size());
        for (u64 pos : local) {
            u64 global = 0;
            if (translateLocalMatch(segments_, pos, query_len, &global))
                out.push_back(global);
        }
    }
    std::sort(out.begin(), out.end());
    if (out.size() > limit)
        out.resize(limit);
    return out;
}

IndexLookup
ExmaTable::occ(Kmer code, u64 pos) const
{
    if (mtl_)
        return mtl_->occ(code, pos);
    if (naive_)
        return naive_->occ(code, pos);
    IndexLookup out;
    auto inc = occ_->increments(code);
    out.rank = lowerBoundRank(inc, static_cast<u32>(pos));
    out.probes = probeCount(inc.size());
    return out;
}

Interval
ExmaTable::stepKmer(const Interval &iv, Kmer code, SearchStats *stats) const
{
    const u64 c = occ_->countBefore(code);
    const IndexLookup lo = occ(code, iv.low);
    const IndexLookup hi = occ(code, iv.high);
    if (stats) {
        ++stats->kstep_iterations;
        stats->total_error += lo.error + hi.error;
        stats->total_probes += lo.probes + hi.probes;
        stats->model_lookups += lo.used_model + hi.used_model;
    }
    return Interval{c + lo.rank, c + hi.rank};
}

Interval
ExmaTable::search(const std::vector<Base> &query, SearchStats *stats) const
{
    const int kk = k();
    Interval iv = fm_->fullInterval();
    size_t i = query.size();
    const size_t rem = query.size() % static_cast<size_t>(kk);
    while (i >= rem + static_cast<size_t>(kk)) {
        i -= static_cast<size_t>(kk);
        iv = stepKmer(iv, packKmer(query.data() + i, kk), stats);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    while (i-- > 0) {
        iv = fm_->extend(iv, query[i]);
        if (stats)
            ++stats->onestep_iterations;
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    return iv;
}

std::vector<ExmaTable::IterTrace>
ExmaTable::traceSearch(const std::vector<Base> &query) const
{
    std::vector<IterTrace> trace;
    const int kk = k();
    Interval iv = fm_->fullInterval();
    size_t i = query.size();
    const size_t rem = query.size() % static_cast<size_t>(kk);
    while (i >= rem + static_cast<size_t>(kk)) {
        i -= static_cast<size_t>(kk);
        const Kmer code = packKmer(query.data() + i, kk);
        IterTrace it;
        it.kmer = code;
        it.pos_low = iv.low;
        it.pos_high = iv.high;
        it.low = occ(code, iv.low);
        it.high = occ(code, iv.high);
        it.base = occ_->baseOf(code);
        trace.push_back(it);
        const u64 c = occ_->countBefore(code);
        iv = Interval{c + it.low.rank, c + it.high.rank};
        if (iv.empty())
            break;
    }
    return trace;
}

u64
ExmaTable::indexParamCount() const
{
    if (mtl_)
        return mtl_->paramCount();
    if (naive_)
        return naive_->paramCount();
    return 0;
}

ExmaTable::SizeReport
ExmaTable::sizeReport() const
{
    SizeReport r;
    const auto &inc = occ_->allIncrements();
    const auto &bases = occ_->baseArray();
    r.increments_raw = inc.size() * 4;
    r.increments_chain = chainCompressedSize(inc);
    r.bases_raw = bases.size() * 4;
    r.bases_chain = chainCompressedSize(bases);
    r.index_bytes = indexParamCount(); // 8-bit quantised (§IV.D)
    r.bwt_bytes = (rows() * 3 + 7) / 8;
    return r;
}

} // namespace exma
