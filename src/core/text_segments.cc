#include "core/text_segments.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {

void
validateSegments(const std::vector<TextSegment> &segments, u64 ref_len)
{
    exma_assert(!segments.empty(), "segment map holds no segments");
    u64 local_cursor = 0;
    u64 prev_global_end = 0;
    for (size_t i = 0; i < segments.size(); ++i) {
        const TextSegment &s = segments[i];
        exma_assert(s.length > 0, "segment %zu is empty", i);
        exma_assert(s.local_begin == local_cursor,
                    "segment %zu begins at local %llu, expected %llu "
                    "(local coordinates must be dense from 0)",
                    i, (unsigned long long)s.local_begin,
                    (unsigned long long)local_cursor);
        exma_assert(s.global_end() <= ref_len,
                    "segment %zu [%llu, %llu) runs past the %llu-base "
                    "reference",
                    i, (unsigned long long)s.global_begin,
                    (unsigned long long)s.global_end(),
                    (unsigned long long)ref_len);
        exma_assert(i == 0 || s.global_begin >= prev_global_end,
                    "segment %zu overlaps its predecessor in global "
                    "coordinates (begins at %llu, predecessor ends at "
                    "%llu)",
                    i, (unsigned long long)s.global_begin,
                    (unsigned long long)prev_global_end);
        local_cursor += s.length;
        prev_global_end = s.global_end();
    }
}

u64
segmentsLocalLength(const std::vector<TextSegment> &segments)
{
    u64 n = 0;
    for (const TextSegment &s : segments)
        n += s.length;
    return n;
}

std::vector<Base>
extractSegments(const std::vector<Base> &ref,
                const std::vector<TextSegment> &segments)
{
    std::vector<Base> out;
    out.reserve(segmentsLocalLength(segments));
    for (const TextSegment &s : segments)
        out.insert(out.end(),
                   ref.begin() + static_cast<std::ptrdiff_t>(s.global_begin),
                   ref.begin() + static_cast<std::ptrdiff_t>(s.global_end()));
    return out;
}

bool
translateLocalMatch(const std::vector<TextSegment> &segments, u64 local_pos,
                    u64 query_len, u64 *global_pos)
{
    // Owning segment: the last one whose local_begin <= local_pos.
    auto it = std::upper_bound(segments.begin(), segments.end(), local_pos,
                               [](u64 pos, const TextSegment &s) {
                                   return pos < s.local_begin;
                               });
    exma_dassert(it != segments.begin(),
                 "local position %llu precedes every segment",
                 (unsigned long long)local_pos);
    const TextSegment &seg = *(it - 1);
    const u64 offset = local_pos - seg.local_begin;
    // A match running past the segment's end spans the concatenation
    // junction — text that does not exist in the real reference.
    if (offset + query_len > seg.length)
        return false;
    *global_pos = seg.global_begin + offset;
    return true;
}

} // namespace exma
