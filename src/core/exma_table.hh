/**
 * @file
 * The EXMA table (§IV.A, Fig. 8) — the paper's primary data structure —
 * bundled with its search engine: per-k-mer sorted increment lists with
 * base pointers and the MAX sentinel convention, Occ computed through a
 * learned index (MTL or naive) or exact binary search, k-step backward
 * search with a 1-step FM-Index remainder path, and measured CHAIN/B∆I
 * size accounting (Fig. 23).
 */

#ifndef EXMA_CORE_EXMA_TABLE_HH
#define EXMA_CORE_EXMA_TABLE_HH

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/dna.hh"
#include "common/search_stats.hh"
#include "core/text_segments.hh"
#include "fmindex/fm_index.hh"
#include "fmindex/kmer_occ.hh"
#include "learned/mtl_index.hh"
#include "learned/naive_kmer_index.hh"

namespace exma {

/** How Occ(k-mer, pos) lookups are resolved. */
enum class OccIndexMode
{
    Exact,        ///< binary search over increments (no model)
    NaiveLearned, ///< one learned hierarchy per k-mer (§IV.A)
    Mtl,          ///< shared multi-task-learning index (§IV.B)
};

class ExmaTable
{
  public:
    struct Config
    {
        int k = 11;
        OccIndexMode mode = OccIndexMode::Mtl;
        MtlIndex::Config mtl;
        NaiveKmerIndex::Config naive;
        FmIndex::Config fm;
    };

    /** Build everything (suffix array computed once and shared). */
    ExmaTable(const std::vector<Base> &ref, const Config &cfg);

    /**
     * Prefix-range / segment-mapped build: construct the table over the
     * concatenation of @p segments' global slices of @p ref (see
     * core/text_segments.hh). Search intervals are local to that
     * concatenation; locateAllGlobal() translates located matches back
     * to global coordinates and drops junction artifacts. This is how
     * a k-mer-prefix shard — a scattered set of owned positions plus
     * their query-length context windows — gets an ExmaTable of its
     * own.
     */
    ExmaTable(const std::vector<Base> &ref,
              std::vector<TextSegment> segments, const Config &cfg);

    /**
     * Serialized parts of a whole table (src/io/index_io.cc): the
     * structural parts plus exactly one learned-index part matching
     * cfg.mode (none for Exact). Restoring trains nothing and copies
     * no hot array — those stay borrowed from the mmap.
     */
    struct Parts
    {
        Config cfg;
        std::vector<TextSegment> segments;
        FmIndex::Restored fm;
        KmerOccTable::Restored occ;
        std::optional<MtlIndex::Restored> mtl;
        std::optional<std::vector<std::pair<Kmer, Rmi<u32>::Parts>>>
            naive;
    };

    /** Restore from serialized parts. */
    explicit ExmaTable(Parts parts);

    const Config &config() const { return cfg_; }

    int k() const { return occ_->k(); }
    u64 rows() const { return occ_->rows(); }

    /** The paper's MAX sentinel: |G| + 1 (one past the last row). */
    u64 maxSentinel() const { return rows(); }

    OccIndexMode mode() const { return cfg_.mode; }
    const KmerOccTable &occTable() const { return *occ_; }
    const FmIndex &fmIndex() const { return *fm_; }
    const MtlIndex *mtlIndex() const { return mtl_.get(); }
    const NaiveKmerIndex *naiveIndex() const { return naive_.get(); }

    /** Per-k-mer base pointer and occurrence count (Fig. 8). */
    u64 baseOf(Kmer code) const { return occ_->baseOf(code); }
    u64 frequency(Kmer code) const { return occ_->frequency(code); }

    /** Instrumented Occ(k-mer, pos) through the configured index. */
    IndexLookup occ(Kmer code, u64 pos) const;

    /** Count_k(P) — cumulative rows below P (tiny, cached in SRAM). */
    u64 countBefore(Kmer code) const { return occ_->countBefore(code); }

    /**
     * Aggregate search instrumentation for the timing models. Hoisted
     * to common/search_stats.hh so batched (multi-threaded) callers
     * can keep one per worker and merge; the nested name stays as an
     * alias for existing callers.
     */
    using SearchStats = exma::SearchStats;

    /** One k-step iteration (two Occ lookups sharing the k-mer). */
    Interval stepKmer(const Interval &iv, Kmer code,
                      SearchStats *stats = nullptr) const;

    /** Full backward search; equals FmIndex::search on the same ref. */
    Interval search(const std::vector<Base> &query,
                    SearchStats *stats = nullptr) const;

    /**
     * Text positions of up to @p limit occurrences in a search
     * interval (via the FM-Index SA samples), in row order. Sharded
     * serving translates these into global reference coordinates.
     */
    std::vector<u64>
    locateAll(const Interval &iv, u64 limit = ~u64{0}) const
    {
        return fm_->locateAll(iv, limit);
    }

    /** Whether this table was built over a segment map. */
    bool segmented() const { return !segments_.empty(); }

    /** The segment map (empty for contiguous builds). */
    const std::vector<TextSegment> &segments() const { return segments_; }

    /**
     * Global text positions of a search interval's occurrences, sorted
     * ascending. For a contiguous build this is locateAll + sort; for
     * a segment-mapped build every occurrence is located, translated
     * through the segment map, and junction artifacts (matches
     * spanning the concatenation seam between two segments, which need
     * @p query_len to detect) are dropped. @p limit then keeps the
     * lowest @p limit positions — applied after the junction filter,
     * so artifacts never consume the caller's budget.
     */
    std::vector<u64> locateAllGlobal(const Interval &iv, u64 query_len,
                                     u64 limit = ~u64{0}) const;

    /**
     * One recorded k-step iteration of a search, for the trace-driven
     * accelerator timing model: the functional layer computes what is
     * fetched; the timing layer replays when.
     */
    struct IterTrace
    {
        Kmer kmer = 0;
        u64 pos_low = 0;     ///< pointer values entering the iteration
        u64 pos_high = 0;
        IndexLookup low;     ///< instrumented Occ(k-mer, low)
        IndexLookup high;
        u64 base = 0;        ///< base pointer (for cache addressing)
    };

    /** Run a search and record every k-step iteration. */
    std::vector<IterTrace> traceSearch(const std::vector<Base> &query) const;

    /** Index parameter count (0 in Exact mode). */
    u64 indexParamCount() const;

    /** Measured component sizes, raw and CHAIN-compressed (Fig. 23). */
    struct SizeReport
    {
        u64 increments_raw = 0;
        u64 increments_chain = 0;
        u64 bases_raw = 0;
        u64 bases_chain = 0;
        u64 index_bytes = 0; ///< 8-bit-quantised parameters (Table I)
        u64 bwt_bytes = 0;   ///< residual 1-step BWT (3 bits/symbol)

        u64
        totalRaw() const
        {
            return increments_raw + bases_raw + index_bytes + bwt_bytes;
        }
        u64
        totalChain() const
        {
            return increments_chain + bases_chain + index_bytes + bwt_bytes;
        }
    };
    SizeReport sizeReport() const;

  private:
    void build(const std::vector<Base> &ref);

    Config cfg_;
    std::vector<TextSegment> segments_; ///< empty for contiguous builds
    std::unique_ptr<FmIndex> fm_;
    std::unique_ptr<KmerOccTable> occ_;
    std::unique_ptr<MtlIndex> mtl_;
    std::unique_ptr<NaiveKmerIndex> naive_;
};

} // namespace exma

#endif // EXMA_CORE_EXMA_TABLE_HH
