#include "lisa/lisa.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {

Lisa::Lisa(const IpBwt &ipbwt, const Config &cfg)
    : ipbwt_(ipbwt), cfg_(cfg)
{
    group_syms_ = std::min(cfg.group_symbols, ipbwt.k());
    tail_space_ = 1;
    for (int j = 0; j < ipbwt.k() - group_syms_; ++j)
        tail_space_ *= 5;

    // Partition the sorted IP-BWT by k-mer prefix. Groups are contiguous
    // because entries are sorted by (k-mer, N).
    const u64 n = ipbwt.rows();
    u64 begin = 0;
    while (begin < n) {
        const u64 prefix = ipbwt.kmer5(begin) / tail_space_;
        u64 end = begin + 1;
        while (end < n && ipbwt.kmer5(end) / tail_space_ == prefix)
            ++end;
        Group g;
        g.begin = begin;
        g.end = end;
        g.keys.reserve(end - begin);
        for (u64 i = begin; i < end; ++i) {
            const u64 tail = ipbwt.kmer5(i) % tail_space_;
            g.keys.push_back(tail * n + ipbwt.pairedRow(i));
        }
        Rmi<u64>::Config rc;
        rc.leaf_size = cfg.leaf_size;
        rc.mlp_root = cfg.epochs > 0;
        rc.epochs = cfg.epochs;
        rc.seed = cfg.seed + prefix;
        g.rmi.build(g.keys, rc);
        params_ += g.rmi.paramCount();
        groups_.emplace(prefix, std::move(g));
        begin = end;
    }
}

u64
Lisa::lowerBoundLearned(u64 code5, u64 pos, LisaStats *stats) const
{
    const u64 n = ipbwt_.rows();
    const u64 prefix = code5 / tail_space_;
    auto it = groups_.find(prefix);
    if (it == groups_.end()) {
        // No entry shares this prefix; fall back to binary search over
        // the whole array (counts as one full-depth probe set).
        if (stats) {
            ++stats->iterations;
            stats->total_probes += 24;
        }
        return ipbwt_.lowerBound(code5, pos);
    }
    const Group &g = it->second;
    const u64 key = (code5 % tail_space_) * n + pos;
    RmiResult r = g.rmi.lookup(key);
    if (stats) {
        ++stats->iterations;
        stats->total_error += r.error;
        stats->total_probes += r.probes;
        stats->error_samples.push_back(static_cast<double>(r.error));
    }
    return g.begin + r.rank;
}

Interval
Lisa::search(const std::vector<Base> &query, LisaStats *stats) const
{
    const int k = ipbwt_.k();
    const u64 n = ipbwt_.rows();
    Interval iv{0, n};
    size_t i = query.size();
    const size_t rem = query.size() % static_cast<size_t>(k);
    if (rem != 0) {
        i -= rem;
        const Base *chunk = query.data() + i;
        iv.low = lowerBoundLearned(
            ipbwt_.padLow(chunk, static_cast<int>(rem)), 0, stats);
        iv.high = lowerBoundLearned(
            ipbwt_.padHigh(chunk, static_cast<int>(rem)), n, stats);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    while (i > 0) {
        i -= static_cast<size_t>(k);
        const u64 code = ipbwt_.code5Of(query.data() + i);
        iv.low = lowerBoundLearned(code, iv.low, stats);
        iv.high = lowerBoundLearned(code, iv.high, stats);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    return iv;
}

} // namespace exma
