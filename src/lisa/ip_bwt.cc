#include "lisa/ip_bwt.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {

IpBwt::IpBwt(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
             int k)
    : k_(k)
{
    build(ref, sa);
}

IpBwt::IpBwt(const std::vector<Base> &ref, int k)
    : k_(k)
{
    build(ref, buildSuffixArray(ref));
}

void
IpBwt::build(const std::vector<Base> &ref, const std::vector<SaIndex> &sa)
{
    exma_assert(k_ >= 1 && k_ <= 27, "k=%d out of range", k_);
    const u64 n = ref.size();
    n_rows_ = n + 1;
    exma_assert(sa.size() == n_rows_, "suffix array size mismatch");

    // Inverse suffix array: text position -> row.
    std::vector<u32> isa(n_rows_);
    for (u64 i = 0; i < n_rows_; ++i)
        isa[sa[i]] = static_cast<u32>(i);

    kmer5_.resize(n_rows_);
    n_.resize(n_rows_);
    for (u64 i = 0; i < n_rows_; ++i) {
        const u64 pos = sa[i];
        u64 code = 0;
        for (int j = 0; j < k_; ++j) {
            const u64 idx = (pos + static_cast<u64>(j)) % n_rows_;
            const u64 sym = idx == n ? 0 : static_cast<u64>(ref[idx]) + 1;
            code = code * 5 + sym;
        }
        kmer5_[i] = code;
        n_[i] = isa[(pos + static_cast<u64>(k_)) % n_rows_];
    }
}

u64
IpBwt::lowerBound(u64 code5, u64 pos) const
{
    u64 lo = 0, hi = n_rows_;
    while (lo < hi) {
        const u64 mid = lo + (hi - lo) / 2;
        const bool less = kmer5_[mid] < code5 ||
                          (kmer5_[mid] == code5 && n_[mid] < pos);
        if (less)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

u64
IpBwt::padLow(const Base *syms, int len) const
{
    u64 code = 0;
    for (int j = 0; j < k_; ++j) {
        const u64 sym = j < len ? static_cast<u64>(syms[j]) + 1 : 0;
        code = code * 5 + sym;
    }
    return code;
}

u64
IpBwt::padHigh(const Base *syms, int len) const
{
    u64 code = 0;
    for (int j = 0; j < k_; ++j) {
        const u64 sym = j < len ? static_cast<u64>(syms[j]) + 1 : 4;
        code = code * 5 + sym;
    }
    return code;
}

u64
IpBwt::code5Of(const Base *syms) const
{
    u64 code = 0;
    for (int j = 0; j < k_; ++j)
        code = code * 5 + static_cast<u64>(syms[j]) + 1;
    return code;
}

Interval
IpBwt::search(const std::vector<Base> &query) const
{
    Interval iv{0, n_rows_};
    size_t i = query.size();
    const size_t rem = query.size() % static_cast<size_t>(k_);
    if (rem != 0) {
        // Rightmost partial chunk: pad down for low, up for high.
        i -= rem;
        const Base *chunk = query.data() + i;
        iv.low = lowerBound(padLow(chunk, static_cast<int>(rem)), 0);
        iv.high = lowerBound(padHigh(chunk, static_cast<int>(rem)),
                             n_rows_);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    while (i > 0) {
        i -= static_cast<size_t>(k_);
        const u64 code = code5Of(query.data() + i);
        iv.low = lowerBound(code, iv.low);
        iv.high = lowerBound(code, iv.high);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    return iv;
}

u64
IpBwt::sizeBytes() const
{
    return kmer5_.size() * 8 + n_.size() * 4;
}

} // namespace exma
