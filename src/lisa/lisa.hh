/**
 * @file
 * LISA search driver with a learned index (§II.B.4, Fig. 5c): a model
 * hierarchy routes each [k-mer, pointer] lower-bound query to a linear
 * leaf, and mispredictions are corrected by (counted) linear search —
 * the error source quantified in the paper's Fig. 6(c).
 *
 * The hierarchy's top level is a radix split on the first `group_symbols`
 * DNA symbols of the k-mer; each populated group owns a two-level RMI
 * over the composite key (k-mer-remainder, N).
 */

#ifndef EXMA_LISA_LISA_HH
#define EXMA_LISA_LISA_HH

#include <unordered_map>
#include <vector>

#include "learned/rmi.hh"
#include "lisa/ip_bwt.hh"

namespace exma {

/** Aggregated instrumentation over LISA searches. */
struct LisaStats
{
    u64 iterations = 0;
    u64 total_error = 0;
    u64 total_probes = 0;
    std::vector<double> error_samples; ///< per-lookup errors (Fig. 6c)
};

class Lisa
{
  public:
    struct Config
    {
        int group_symbols = 8;  ///< radix width of the hierarchy root
        u64 leaf_size = 4096;   ///< RMI leaf granularity per group
        int epochs = 0;         ///< 0 = linear root (fast, default)
        u64 seed = 5;
    };

    Lisa(const IpBwt &ipbwt, const Config &cfg);

    /** Backward search via the learned index; equals IpBwt::search. */
    Interval search(const std::vector<Base> &query,
                    LisaStats *stats = nullptr) const;

    /** Learned-index parameters (Fig. 6 discussion: ~1.5 GB at 3 Gbp). */
    u64 paramCount() const { return params_; }

    const IpBwt &ipbwt() const { return ipbwt_; }

  private:
    struct Group
    {
        u64 begin = 0; ///< first IP-BWT entry of this k-mer-prefix group
        u64 end = 0;
        std::vector<u64> keys; ///< composite (k-mer remainder, N) keys
        Rmi<u64> rmi;
    };

    u64 lowerBoundLearned(u64 code5, u64 pos, LisaStats *stats) const;

    const IpBwt &ipbwt_;
    Config cfg_;
    int group_syms_;
    u64 tail_space_ = 1;  ///< 5^(k - group_syms)
    std::unordered_map<u64, Group> groups_; ///< by base-5 prefix code
    u64 params_ = 0;
};

} // namespace exma

#endif // EXMA_LISA_LISA_HH
