/**
 * @file
 * LISA's Index-Paired BWT (IP-BWT) array (§II.B.4, Fig. 5): entry i is
 * the pair [k-mer, N] where the k-mer is the first k symbols of BW-matrix
 * row i (base-5 coded, $ = 0 smallest) and N is the row of the rotation
 * with the first k and remaining symbols swapped. Entries are sorted by
 * construction; each backward-search iteration is one lower-bound query
 * of a [k-mer, pointer] pair.
 */

#ifndef EXMA_LISA_IP_BWT_HH
#define EXMA_LISA_IP_BWT_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"
#include "fmindex/fm_index.hh"
#include "fmindex/suffix_array.hh"

namespace exma {

class IpBwt
{
  public:
    IpBwt(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
          int k);
    IpBwt(const std::vector<Base> &ref, int k);

    int k() const { return k_; }
    u64 rows() const { return n_rows_; }

    /** Base-5 k-mer code of entry @p i. */
    u64 kmer5(u64 i) const { return kmer5_[i]; }

    /** Paired row number N of entry @p i. */
    u64 pairedRow(u64 i) const { return n_[i]; }

    /** First index whose [k-mer, N] pair is >= [@p code5, @p pos]. */
    u64 lowerBound(u64 code5, u64 pos) const;

    /** Base-5 code of @p len DNA symbols padded to k with $ (low). */
    u64 padLow(const Base *syms, int len) const;

    /** Base-5 code of @p len DNA symbols padded to k with T (high). */
    u64 padHigh(const Base *syms, int len) const;

    /** Base-5 code of a full pure-DNA k-mer. */
    u64 code5Of(const Base *syms) const;

    /**
     * Chunked backward search (binary-search driven): processes the
     * rightmost partial chunk first with $/T padding, then full k-mer
     * chunks right to left. Must equal FmIndex::search's interval.
     */
    Interval search(const std::vector<Base> &query) const;

    /** Iterations a search of length @p qlen takes: ceil(qlen / k). */
    u64
    iterationsFor(u64 qlen) const
    {
        return (qlen + static_cast<u64>(k_) - 1) / static_cast<u64>(k_);
    }

    u64 sizeBytes() const;

  private:
    void build(const std::vector<Base> &ref, const std::vector<SaIndex> &sa);

    int k_;
    u64 n_rows_ = 0;
    std::vector<u64> kmer5_; ///< sorted (with n_) by construction
    std::vector<u32> n_;
};

} // namespace exma

#endif // EXMA_LISA_IP_BWT_HH
