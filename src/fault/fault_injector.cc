#include "fault/fault_injector.hh"

#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"

namespace exma {

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::KillWorker: return "kill";
    case FaultKind::HangRequest: return "hang";
    case FaultKind::DelayMs: return "delay";
    case FaultKind::ThrowInProcess: return "throw";
    case FaultKind::CorruptResponse: return "corrupt";
    }
    return "?";
}

bool
FaultRule::matches(std::string_view at) const
{
    if (site == "*")
        return true;
    if (!site.empty() && site.back() == '*') {
        const std::string_view prefix(site.data(), site.size() - 1);
        return at.substr(0, prefix.size()) == prefix;
    }
    return at == site;
}

FaultInjector::FaultInjector(std::vector<FaultRule> rules, u64 seed)
    : rules_(std::move(rules)), seed_(seed)
{
}

namespace {

FaultKind
parseKind(std::string_view word, std::string_view spec)
{
    for (FaultKind k :
         {FaultKind::KillWorker, FaultKind::HangRequest, FaultKind::DelayMs,
          FaultKind::ThrowInProcess, FaultKind::CorruptResponse}) {
        if (word == faultKindName(k))
            return k;
    }
    exma_fatal("fault spec '%.*s': unknown fault kind '%.*s'",
               static_cast<int>(spec.size()), spec.data(),
               static_cast<int>(word.size()), word.data());
}

u64
parseCount(std::string_view value, std::string_view spec)
{
    u64 out = 0;
    if (value.empty())
        exma_fatal("fault spec '%.*s': empty numeric value",
                   static_cast<int>(spec.size()), spec.data());
    for (const char c : value) {
        if (c < '0' || c > '9')
            exma_fatal("fault spec '%.*s': bad number '%.*s'",
                       static_cast<int>(spec.size()), spec.data(),
                       static_cast<int>(value.size()), value.data());
        out = out * 10 + static_cast<u64>(c - '0');
    }
    return out;
}

} // namespace

std::vector<FaultRule>
FaultInjector::parseSpec(std::string_view spec)
{
    std::vector<FaultRule> rules;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t comma = std::min(spec.find(',', pos), spec.size());
        const std::string_view entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        const size_t at = entry.find('@');
        if (at == std::string_view::npos)
            exma_fatal("fault spec '%.*s': rule '%.*s' lacks '@site'",
                       static_cast<int>(spec.size()), spec.data(),
                       static_cast<int>(entry.size()), entry.data());
        FaultRule rule;
        rule.kind = parseKind(entry.substr(0, at), spec);
        rule.ms = rule.kind == FaultKind::DelayMs       ? 20
                  : rule.kind == FaultKind::HangRequest ? 600'000
                                                        : 0;

        std::string_view rest = entry.substr(at + 1);
        const size_t colon = std::min(rest.find(':'), rest.size());
        rule.site = std::string(rest.substr(0, colon));
        if (rule.site.empty())
            exma_fatal("fault spec '%.*s': rule '%.*s' has an empty site",
                       static_cast<int>(spec.size()), spec.data(),
                       static_cast<int>(entry.size()), entry.data());
        rest = colon < rest.size() ? rest.substr(colon + 1)
                                   : std::string_view{};

        while (!rest.empty()) {
            const size_t next = std::min(rest.find(':'), rest.size());
            const std::string_view kv = rest.substr(0, next);
            rest = next < rest.size() ? rest.substr(next + 1)
                                      : std::string_view{};
            const size_t eq = kv.find('=');
            if (eq == std::string_view::npos)
                exma_fatal("fault spec '%.*s': option '%.*s' lacks '='",
                           static_cast<int>(spec.size()), spec.data(),
                           static_cast<int>(kv.size()), kv.data());
            const std::string_view key = kv.substr(0, eq);
            const u64 value = parseCount(kv.substr(eq + 1), spec);
            if (key == "nth") {
                if (value == 0)
                    exma_fatal("fault spec '%.*s': nth is 1-based",
                               static_cast<int>(spec.size()), spec.data());
                rule.nth = value;
            } else if (key == "every") {
                rule.every = value;
            } else if (key == "ms") {
                rule.ms = value;
            } else {
                exma_fatal("fault spec '%.*s': unknown option '%.*s'",
                           static_cast<int>(spec.size()), spec.data(),
                           static_cast<int>(key.size()), key.data());
            }
        }
        rules.push_back(std::move(rule));
    }
    return rules;
}

std::vector<FaultAction>
FaultInjector::at(std::string_view site)
{
    std::vector<FaultAction> fired;
    MutexLock lock(mtx_);
    u64 *count = nullptr;
    for (auto &[name, n] : counts_) {
        if (name == site) {
            count = &n;
            break;
        }
    }
    if (!count) {
        counts_.emplace_back(std::string(site), 0);
        count = &counts_.back().second;
    }
    const u64 hit = ++*count;

    for (const FaultRule &rule : rules_) {
        if (!rule.matches(site) || hit < rule.nth)
            continue;
        const bool fires = hit == rule.nth ||
                           (rule.every > 0 &&
                            (hit - rule.nth) % rule.every == 0);
        if (fires)
            fired.push_back({rule.kind, rule.ms});
    }
    return fired;
}

u64
FaultInjector::hits(std::string_view site) const
{
    MutexLock lock(mtx_);
    for (const auto &[name, n] : counts_) {
        if (name == site)
            return n;
    }
    return 0;
}

namespace detail {
std::atomic<FaultInjector *> g_fault_injector{nullptr};
} // namespace detail

namespace {

// Keeps the installed injector alive while raw pointers circulate
// through faultInjector(). Function-local static so the slot outlives
// every static-destruction-order combination; the fast path never
// touches it.
struct InjectorOwner {
    Mutex mtx;
    std::shared_ptr<FaultInjector> owner EXMA_GUARDED_BY(mtx);
};

InjectorOwner &
injectorOwner()
{
    static InjectorOwner slot;
    return slot;
}

} // namespace

std::shared_ptr<FaultInjector>
installFaultInjector(std::shared_ptr<FaultInjector> injector)
{
    InjectorOwner &slot = injectorOwner();
    MutexLock lock(slot.mtx);
    std::shared_ptr<FaultInjector> prev = std::move(slot.owner);
    slot.owner = std::move(injector);
    detail::g_fault_injector.store(slot.owner.get(),
                                   std::memory_order_release);
    return prev;
}

void
installFaultInjectorFromEnvOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *spec = std::getenv("EXMA_FAULTS");
        if (!spec || !*spec || faultInjector())
            return;
        const char *seed_env = std::getenv("EXMA_FAULT_SEED");
        const u64 seed =
            seed_env ? std::strtoull(seed_env, nullptr, 10) : 0;
        installFaultInjector(std::make_shared<FaultInjector>(
            FaultInjector::parseSpec(spec), seed));
        exma_inform("fault injector armed: EXMA_FAULTS=%s seed=%llu", spec,
                    static_cast<unsigned long long>(seed));
    });
}

void
CancelToken::cancel()
{
    {
        MutexLock lock(mtx_);
        cancelled_ = true;
    }
    cv_.notify_all();
}

bool
CancelToken::cancelled() const
{
    MutexLock lock(mtx_);
    return cancelled_;
}

bool
CancelToken::sleepFor(u64 ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    MutexLock lock(mtx_);
    while (!cancelled_) {
        if (cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            return !cancelled_;
    }
    return false;
}

} // namespace exma
