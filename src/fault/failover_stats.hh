/**
 * @file
 * Failover counters for one routed search: how many replica-tier
 * recovery mechanisms fired while producing the result. Mergeable
 * value object in the SearchStats mould so callers can aggregate
 * across batches with `+=`.
 */

#ifndef EXMA_FAULT_FAILOVER_STATS_HH
#define EXMA_FAULT_FAILOVER_STATS_HH

#include "common/types.hh"

namespace exma {

struct FailoverStats {
    u64 retries = 0;         ///< resubmissions after a failed attempt
    u64 hedges = 0;          ///< duplicate requests sent to stragglers
    u64 respawns = 0;        ///< dead replicas replaced during the call
    u64 worker_down = 0;     ///< WorkerDown responses observed
    u64 failed = 0;          ///< Failed (exception) responses observed
    u64 corrupt = 0;         ///< canary-mismatch responses discarded
    u64 deadline_misses = 0; ///< shard calls abandoned at the deadline

    FailoverStats &
    operator+=(const FailoverStats &o)
    {
        retries += o.retries;
        hedges += o.hedges;
        respawns += o.respawns;
        worker_down += o.worker_down;
        failed += o.failed;
        corrupt += o.corrupt;
        deadline_misses += o.deadline_misses;
        return *this;
    }

    friend FailoverStats
    operator+(FailoverStats a, const FailoverStats &b)
    {
        a += b;
        return a;
    }

    bool operator==(const FailoverStats &) const = default;

    void reset() { *this = FailoverStats{}; }
};

} // namespace exma

#endif // EXMA_FAULT_FAILOVER_STATS_HH
