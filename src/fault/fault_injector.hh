/**
 * @file
 * Deterministic fault injection for the serving tier.
 *
 * A FaultInjector holds a list of rules, each binding a fault kind
 * (kill / hang / delay / throw / corrupt) to a named *site* — a string
 * like "shard00/r1" (a replica worker) or "io.load" (the mmap load
 * path) — with counter-based triggers: fire on the Nth hit of that
 * site, optionally every `every` hits thereafter. All decisions are
 * pure functions of the rule list, the per-site hit counters, and the
 * seed, so a failing fault schedule replays exactly.
 *
 * The injector is compiled in unconditionally but costs one relaxed
 * atomic load per probe when disabled: instrumented code calls the
 * free function faultInjector(), which returns nullptr unless an
 * injector has been installed (programmatically, or from the
 * EXMA_FAULTS / EXMA_FAULT_SEED environment via
 * installFaultInjectorFromEnvOnce()).
 *
 * Rule spec grammar (comma-separated rules in EXMA_FAULTS):
 *
 *     kind@site[:key=value]...
 *
 *     kinds:  kill | hang | delay | throw | corrupt
 *     site:   exact name, or a '*'-terminated prefix ("shard00*"),
 *             or "*" alone for every site
 *     keys:   nth=N    first firing hit, 1-based        (default 1)
 *             every=N  re-fire period after nth; 0=once (default 0)
 *             ms=N     sleep for delay/hang             (default
 *                      delay:20, hang:600000)
 *
 * Example: EXMA_FAULTS="kill@shard01/r0:nth=3,delay@*:ms=5:every=10"
 */

#ifndef EXMA_FAULT_FAULT_INJECTOR_HH
#define EXMA_FAULT_FAULT_INJECTOR_HH

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace exma {

enum class FaultKind : u8 {
    KillWorker,      ///< worker dies before serving the request
    HangRequest,     ///< worker sleeps `ms`, then dies (stuck replica)
    DelayMs,         ///< worker sleeps `ms`, then serves (slow replica)
    ThrowInProcess,  ///< process() throws mid-request
    CorruptResponse, ///< response payload flipped after canary stamping
};

/** Parse/print helpers for specs and diagnostics. */
std::string_view faultKindName(FaultKind kind);

struct FaultRule {
    FaultKind kind = FaultKind::DelayMs;
    std::string site;  ///< exact site, "prefix*", or "*"
    u64 nth = 1;       ///< 1-based hit index of the first firing
    u64 every = 0;     ///< re-fire period after nth; 0 = fire once
    u64 ms = 0;        ///< sleep duration for DelayMs / HangRequest

    bool matches(std::string_view at) const;
};

/** One fired fault, as returned by FaultInjector::at(). */
struct FaultAction {
    FaultKind kind;
    u64 ms;
};

class FaultInjector
{
  public:
    explicit FaultInjector(std::vector<FaultRule> rules, u64 seed = 0);

    /**
     * Parse a comma-separated rule spec (see file comment). Malformed
     * specs exma_fatal: a mistyped EXMA_FAULTS must never silently
     * disable the fault it meant to inject.
     */
    static std::vector<FaultRule> parseSpec(std::string_view spec);

    /**
     * Record one hit of `site` and return the actions of every rule
     * that fires on this hit, in rule order. Thread-safe; counters are
     * per concrete site, so a "shard00*" rule counts the replica sites
     * shard00/r0 and shard00/r1 independently, and counts survive
     * worker respawns (sites are named stably).
     */
    std::vector<FaultAction> at(std::string_view site);

    /** Total hits recorded for a concrete site (for tests/stats). */
    u64 hits(std::string_view site) const;

    const std::vector<FaultRule> &rules() const { return rules_; }
    u64 seed() const { return seed_; }

  private:
    const std::vector<FaultRule> rules_;
    const u64 seed_;
    mutable Mutex mtx_;
    // site -> hit count; flat vector: site cardinality is tiny
    // (shards × replicas + a few io sites).
    std::vector<std::pair<std::string, u64>> counts_ EXMA_GUARDED_BY(mtx_);
};

/** @{ Global injector registration (process-wide, test-overridable). */

/** Install (or clear with nullptr); returns the previous injector. */
std::shared_ptr<FaultInjector>
installFaultInjector(std::shared_ptr<FaultInjector> injector);

/**
 * One-shot: if EXMA_FAULTS is set and nothing is installed yet, parse
 * it (seed from EXMA_FAULT_SEED) and install. Serving entry points
 * (router construction, loadIndex) call this so env-driven injection
 * works in benches and CLIs without code changes.
 */
void installFaultInjectorFromEnvOnce();

namespace detail {
extern std::atomic<FaultInjector *> g_fault_injector;
} // namespace detail

/** The installed injector, or nullptr. One relaxed load when absent. */
inline FaultInjector *
faultInjector()
{
    return detail::g_fault_injector.load(std::memory_order_acquire);
}

/** RAII install-for-scope, for tests. Restores the previous injector. */
class ScopedFaultInjector
{
  public:
    explicit ScopedFaultInjector(std::shared_ptr<FaultInjector> injector)
        : prev_(installFaultInjector(std::move(injector)))
    {
    }
    ~ScopedFaultInjector() { installFaultInjector(std::move(prev_)); }
    ScopedFaultInjector(const ScopedFaultInjector &) = delete;
    ScopedFaultInjector &operator=(const ScopedFaultInjector &) = delete;

  private:
    std::shared_ptr<FaultInjector> prev_;
};

/** @} */

/**
 * A cancellable sleep: injected hangs and delays block on this instead
 * of std::this_thread::sleep_for, so kill() / worker destruction can
 * interrupt a fault that would otherwise pin the thread for minutes.
 */
class CancelToken
{
  public:
    /** Wake every in-flight and future sleepFor() immediately. */
    void cancel();

    bool cancelled() const;

    /**
     * Sleep up to `ms` milliseconds; returns true if the full duration
     * elapsed, false if cancel() cut it short.
     */
    bool sleepFor(u64 ms);

  private:
    mutable Mutex mtx_;
    CondVar cv_;
    bool cancelled_ EXMA_GUARDED_BY(mtx_) = false;
};

} // namespace exma

#endif // EXMA_FAULT_FAULT_INJECTOR_HH
