/**
 * @file
 * CHAIN compression (§IV.C.4, Fig. 17b): because EXMA increments and
 * bases are *sorted* within a 64-byte memory line, CHAIN stores the
 * first value and the chain of consecutive differences Δi = v_i −
 * v_{i−1}, which are far narrower than B∆I's from-one-base deltas.
 * Decompression is a prefix sum (one adder), compression a bank of
 * subtractors — matching the hardware cost in Table I.
 */

#ifndef EXMA_COMPRESS_CHAIN_HH
#define EXMA_COMPRESS_CHAIN_HH

#include <span>
#include <vector>

#include "common/types.hh"

namespace exma {

/** u32 values per 64-byte line. */
constexpr size_t kChainValuesPerLine = 16;

/**
 * CHAIN-encoded size (bytes) for one line of up to 16 sorted u32
 * values: 1 width tag + 4-byte first value + (n−1) deltas of the
 * narrowest byte width that fits; incompressible lines cost 64 bytes.
 */
u64 chainLineSize(std::span<const u32> values);

/** Compressed size of a whole u32 array, in 16-value lines. */
u64 chainCompressedSize(std::span<const u32> values);

/** compressed / original ratio for a u32 array. */
double chainCompressRatio(std::span<const u32> values);

/** Reversible encoder for one line (tests prove size accounting). */
std::vector<u8> chainEncode(std::span<const u32> values);

/** Inverse of chainEncode. */
std::vector<u32> chainDecode(std::span<const u8> blob);

/**
 * Adder operations a hardware decompressor performs for one line — the
 * paper's point that CHAIN decompression "requires only one adder for
 * accumulations".
 */
u64 chainDecodeAdderOps(std::span<const u32> values);

} // namespace exma

#endif // EXMA_COMPRESS_CHAIN_HH
