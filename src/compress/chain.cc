#include "compress/chain.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {
namespace {

/** Narrowest delta byte-width (1/2/4) covering all gaps, or 0 if the
 *  values are not non-decreasing. */
int
deltaWidth(std::span<const u32> values)
{
    u32 max_delta = 0;
    for (size_t i = 1; i < values.size(); ++i) {
        if (values[i] < values[i - 1])
            return 0;
        max_delta = std::max(max_delta, values[i] - values[i - 1]);
    }
    if (max_delta < 256)
        return 1;
    if (max_delta < 65536)
        return 2;
    return 4;
}

} // namespace

u64
chainLineSize(std::span<const u32> values)
{
    exma_assert(!values.empty() && values.size() <= kChainValuesPerLine,
                "line must hold 1..16 values");
    const int w = deltaWidth(values);
    if (w == 0)
        return values.size() * 4; // unsorted line kept raw
    const u64 encoded =
        1 + 4 + static_cast<u64>(values.size() - 1) * static_cast<u64>(w);
    return std::min<u64>(encoded, values.size() * 4);
}

u64
chainCompressedSize(std::span<const u32> values)
{
    u64 total = 0;
    for (size_t off = 0; off < values.size(); off += kChainValuesPerLine) {
        const size_t n = std::min(kChainValuesPerLine, values.size() - off);
        total += chainLineSize(values.subspan(off, n));
    }
    return total;
}

double
chainCompressRatio(std::span<const u32> values)
{
    if (values.empty())
        return 1.0;
    return static_cast<double>(chainCompressedSize(values)) /
           static_cast<double>(values.size() * 4);
}

std::vector<u8>
chainEncode(std::span<const u32> values)
{
    exma_assert(!values.empty() && values.size() <= kChainValuesPerLine,
                "line must hold 1..16 values");
    int w = deltaWidth(values);
    exma_assert(w != 0, "CHAIN requires sorted values");
    std::vector<u8> blob;
    blob.push_back(static_cast<u8>((values.size() << 3) |
                                   static_cast<size_t>(w)));
    for (int i = 0; i < 4; ++i)
        blob.push_back(static_cast<u8>(values[0] >> (8 * i)));
    for (size_t v = 1; v < values.size(); ++v) {
        const u32 d = values[v] - values[v - 1];
        for (int i = 0; i < w; ++i)
            blob.push_back(static_cast<u8>(d >> (8 * i)));
    }
    return blob;
}

std::vector<u32>
chainDecode(std::span<const u8> blob)
{
    exma_assert(blob.size() >= 5, "CHAIN blob too short");
    const size_t n = blob[0] >> 3;
    const int w = blob[0] & 7;
    u32 acc = 0;
    for (int i = 0; i < 4; ++i)
        acc |= static_cast<u32>(blob[1 + static_cast<size_t>(i)]) << (8 * i);
    std::vector<u32> values = {acc};
    size_t off = 5;
    for (size_t v = 1; v < n; ++v) {
        u32 d = 0;
        for (int i = 0; i < w; ++i)
            d |= static_cast<u32>(blob[off++]) << (8 * i);
        acc += d;
        values.push_back(acc);
    }
    return values;
}

u64
chainDecodeAdderOps(std::span<const u32> values)
{
    // One accumulation per delta: n-1 adds per line.
    return values.empty() ? 0 : values.size() - 1;
}

} // namespace exma
