#include "compress/bdi.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace exma {
namespace {

/** Load a little-endian value of @p width bytes at @p off. */
u64
loadLE(std::span<const u8> line, size_t off, size_t width)
{
    u64 v = 0;
    for (size_t i = 0; i < width; ++i)
        v |= static_cast<u64>(line[off + i]) << (8 * i);
    return v;
}

/** Does signed delta d fit in @p w bytes? */
bool
fitsSigned(i64 d, size_t w)
{
    const i64 lim = i64{1} << (8 * w - 1);
    return d >= -lim && d < lim;
}

/**
 * Size of a base{B}-delta{W} encoding with zero immediates, or 0 if the
 * line cannot be encoded this way. Layout: base (B bytes) + mask
 * (k bits -> ceil(k/8) bytes) + k deltas of W bytes.
 */
u64
baseDeltaSize(std::span<const u8> line, size_t base_w, size_t delta_w)
{
    const size_t k = kLineBytes / base_w;
    u64 base = 0;
    bool have_base = false;
    for (size_t i = 0; i < k; ++i) {
        const u64 v = loadLE(line, i * base_w, base_w);
        const i64 from_zero = static_cast<i64>(v);
        if (fitsSigned(from_zero, delta_w))
            continue; // zero-immediate
        if (!have_base) {
            base = v;
            have_base = true;
            continue;
        }
        const i64 d = static_cast<i64>(v - base);
        if (!fitsSigned(d, delta_w))
            return 0;
    }
    return base_w + (k + 7) / 8 + k * delta_w;
}

} // namespace

u64
bdiLineSize(std::span<const u8> line)
{
    exma_assert(line.size() == kLineBytes, "B∆I expects 64-byte lines");

    // Zero line?
    bool all_zero = true;
    for (u8 b : line)
        all_zero &= (b == 0);
    if (all_zero)
        return 1;

    // Repeated 8-byte value?
    bool repeated = true;
    for (size_t i = 8; i < kLineBytes && repeated; ++i)
        repeated = line[i] == line[i - 8];
    u64 best = repeated ? 8 : kLineBytes;

    const std::pair<size_t, size_t> shapes[] = {
        {8, 1}, {8, 2}, {8, 4}, {4, 1}, {4, 2}, {2, 1}};
    for (auto [bw, dw] : shapes) {
        const u64 s = baseDeltaSize(line, bw, dw);
        if (s != 0)
            best = std::min(best, s);
    }
    return best;
}

u64
bdiCompressedSize(std::span<const u8> data)
{
    u64 total = 0;
    size_t off = 0;
    for (; off + kLineBytes <= data.size(); off += kLineBytes)
        total += bdiLineSize(data.subspan(off, kLineBytes));
    total += data.size() - off; // trailing partial line kept raw
    return total;
}

double
bdiCompressRatio(std::span<const u8> data)
{
    if (data.empty())
        return 1.0;
    return static_cast<double>(bdiCompressedSize(data)) /
           static_cast<double>(data.size());
}

std::vector<u8>
bdiEncodeBase8(std::span<const u8> line, int delta_bytes)
{
    exma_assert(line.size() == kLineBytes, "B∆I expects 64-byte lines");
    const size_t w = static_cast<size_t>(delta_bytes);
    const u64 base = loadLE(line, 0, 8);
    std::vector<u8> blob;
    blob.reserve(8 + 8 * w);
    for (int i = 0; i < 8; ++i)
        blob.push_back(static_cast<u8>(base >> (8 * i)));
    for (size_t v = 0; v < 8; ++v) {
        const i64 d =
            static_cast<i64>(loadLE(line, v * 8, 8) - base);
        if (!fitsSigned(d, w))
            return {};
        for (size_t i = 0; i < w; ++i)
            blob.push_back(static_cast<u8>(static_cast<u64>(d) >> (8 * i)));
    }
    return blob;
}

std::vector<u8>
bdiDecodeBase8(std::span<const u8> blob, int delta_bytes)
{
    const size_t w = static_cast<size_t>(delta_bytes);
    exma_assert(blob.size() == 8 + 8 * w, "bad B∆I blob");
    const u64 base = loadLE(blob, 0, 8);
    std::vector<u8> line(kLineBytes);
    for (size_t v = 0; v < 8; ++v) {
        u64 d = loadLE(blob, 8 + v * w, w);
        // Sign-extend.
        if (w < 8 && (d >> (8 * w - 1)) & 1)
            d |= ~((u64{1} << (8 * w)) - 1);
        const u64 val = base + d;
        for (size_t i = 0; i < 8; ++i)
            line[v * 8 + i] = static_cast<u8>(val >> (8 * i));
    }
    return line;
}

} // namespace exma
