/**
 * @file
 * Base-Delta-Immediate (B∆I) cache-line compression (Pekhimenko et al.,
 * PACT 2012) — the baseline the paper compares CHAIN against (Fig. 17a,
 * Fig. 23). A 64-byte line is stored as one base value plus narrow
 * deltas; values near zero are kept as immediates.
 */

#ifndef EXMA_COMPRESS_BDI_HH
#define EXMA_COMPRESS_BDI_HH

#include <span>
#include <vector>

#include "common/types.hh"

namespace exma {

/** Cache-line granularity used by both codecs. */
constexpr size_t kLineBytes = 64;

/**
 * Best achievable B∆I encoding size (bytes) for one 64-byte line.
 * Tries zero-line, repeated-value, and all base{8,4,2}-delta{1,2,4}
 * encodings with a zero-immediate mask, like the original design.
 */
u64 bdiLineSize(std::span<const u8> line);

/** Compressed size of a whole buffer, processed in 64-byte lines. */
u64 bdiCompressedSize(std::span<const u8> data);

/** compressed / original ratio for a buffer (1.0 = incompressible). */
double bdiCompressRatio(std::span<const u8> data);

/**
 * Reference encoder/decoder for the base8-delta family, used by tests
 * to prove the size accounting corresponds to a real reversible code.
 * Returns empty if the line does not fit the requested delta width.
 */
std::vector<u8> bdiEncodeBase8(std::span<const u8> line, int delta_bytes);
std::vector<u8> bdiDecodeBase8(std::span<const u8> blob, int delta_bytes);

} // namespace exma

#endif // EXMA_COMPRESS_BDI_HH
