/**
 * @file
 * `exma-index` — build, inspect, and verify persistent `.exma.*`
 * indexes (src/io/).
 *
 *   exma-index build  --out DIR [--dataset NAME] [--scale F]
 *                     [--fasta FILE] [--mode exact|naive|mtl] [--k K]
 *                     [--layout mono|sharded|routed] [--shards N]
 *                     [--max-query-len L] [--prefix-len P] [--json FILE]
 *   exma-index info   --out DIR
 *   exma-index verify --out DIR <same build flags> [--queries N]
 *
 * `build` constructs the index in memory (synthetic dataset at the
 * given scale, or a real FASTA) and saves it; `info` loads an index
 * and prints its shape and load time; `verify` rebuilds the same index
 * fresh, loads the saved one, and differentially checks that both
 * return identical hit sets on reference-sampled queries — the CLI
 * face of the tests/io round-trip suite, used by the CI index-format
 * job. Timings print as `key=value` lines and, with --json, land in a
 * flat JSON object (table_build_s / index_save_s / index_load_s).
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "genome/fasta.hh"
#include "genome/reference.hh"
#include "persist/index_io.hh"

namespace {

using namespace exma;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Options
{
    std::string cmd;
    std::string out;
    std::string dataset = "human";
    double scale = 0.25;
    std::string fasta;
    std::string mode = "mtl";
    int k = 0; ///< 0 = dataset-scaled default
    std::string layout; ///< empty = mono if shards == 1, routed otherwise
    unsigned shards = 1;
    u64 max_query_len = 128;
    int prefix_len = 0;
    u64 queries = 200;
    std::string json;
};

[[noreturn]] void
usage(const std::string &err = "")
{
    if (!err.empty())
        std::cerr << "exma-index: " << err << "\n\n";
    std::cerr <<
        "usage:\n"
        "  exma-index build  --out DIR [--dataset NAME] [--scale F]\n"
        "                    [--fasta FILE] [--mode exact|naive|mtl]\n"
        "                    [--k K] [--layout mono|sharded|routed]\n"
        "                    [--shards N] [--max-query-len L]\n"
        "                    [--prefix-len P] [--json FILE]\n"
        "  exma-index info   --out DIR [--json FILE]\n"
        "  exma-index verify --out DIR <same build flags> [--queries N]\n";
    std::exit(err.empty() ? 0 : 2);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage("missing command");
    Options opt;
    opt.cmd = argv[1];
    if (opt.cmd == "--help" || opt.cmd == "-h")
        usage();
    if (opt.cmd != "build" && opt.cmd != "info" && opt.cmd != "verify")
        usage("unknown command '" + opt.cmd + "'");

    const auto need = [&](int i) -> std::string {
        if (i + 1 >= argc)
            usage(std::string(argv[i]) + " needs a value");
        return argv[i + 1];
    };
    for (int i = 2; i < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--out")
            opt.out = need(i);
        else if (flag == "--dataset")
            opt.dataset = need(i);
        else if (flag == "--scale")
            opt.scale = std::stod(need(i));
        else if (flag == "--fasta")
            opt.fasta = need(i);
        else if (flag == "--mode")
            opt.mode = need(i);
        else if (flag == "--k")
            opt.k = std::stoi(need(i));
        else if (flag == "--layout")
            opt.layout = need(i);
        else if (flag == "--shards")
            opt.shards = static_cast<unsigned>(std::stoul(need(i)));
        else if (flag == "--max-query-len")
            opt.max_query_len = std::stoull(need(i));
        else if (flag == "--prefix-len")
            opt.prefix_len = std::stoi(need(i));
        else if (flag == "--queries")
            opt.queries = std::stoull(need(i));
        else if (flag == "--json")
            opt.json = need(i);
        else
            usage("unknown flag '" + flag + "'");
    }
    if (opt.out.empty())
        usage("--out is required");
    if (opt.layout.empty())
        opt.layout = opt.shards > 1 ? "routed" : "mono";
    if (opt.layout != "mono" && opt.layout != "sharded" &&
        opt.layout != "routed")
        usage("--layout must be mono, sharded or routed");
    if (opt.mode != "exact" && opt.mode != "naive" && opt.mode != "mtl")
        usage("--mode must be exact, naive or mtl");
    if (opt.layout == "mono" && opt.shards > 1)
        usage("--layout mono cannot take --shards > 1");
    return opt;
}

/** Flat key=value metrics: printed as they land, dumped to --json. */
class Metrics
{
  public:
    void
    put(const std::string &key, double value)
    {
        values_[key] = value;
        std::cout << key << "=" << value << "\n";
    }

    void
    save(const std::string &path) const
    {
        if (path.empty())
            return;
        std::ofstream out(path, std::ios::trunc);
        exma_assert(out.good(), "cannot write '%s'", path.c_str());
        out << "{\n";
        size_t i = 0;
        for (const auto &[key, value] : values_) {
            out << "  \"" << key << "\": " << value;
            out << (++i == values_.size() ? "\n" : ",\n");
        }
        out << "}\n";
    }

  private:
    std::map<std::string, double> values_;
};

Dataset
loadDataset(const Options &opt)
{
    if (!opt.fasta.empty()) {
        const std::vector<FastaRecord> records =
            readFastaFile(opt.fasta);
        return makeDatasetFromRecords(opt.dataset, records);
    }
    return makeDataset(opt.dataset, opt.scale);
}

ExmaTable::Config
tableConfig(const Options &opt, const Dataset &ds)
{
    ExmaTable::Config cfg;
    cfg.k = opt.k > 0 ? opt.k : ds.exma_k;
    cfg.mode = opt.mode == "exact"   ? OccIndexMode::Exact
               : opt.mode == "naive" ? OccIndexMode::NaiveLearned
                                     : OccIndexMode::Mtl;
    return cfg;
}

/** An index of any layout, built fresh or loaded from files. */
struct Index
{
    std::unique_ptr<ExmaTable> table;
    std::unique_ptr<ShardedExmaTable> sharded;
    std::unique_ptr<ShardRouter> router;
    LoadedIndex loaded; ///< keeps the mmaps alive for loaded indexes

    std::vector<std::vector<u64>>
    search(const std::vector<std::vector<Base>> &queries) const
    {
        if (table) {
            std::vector<std::vector<u64>> hits(queries.size());
            for (size_t i = 0; i < queries.size(); ++i)
                hits[i] = table->locateAllGlobal(
                    table->search(queries[i]), queries[i].size());
            return hits;
        }
        if (sharded)
            return sharded->search(queries).hits;
        return router->search(queries).hits;
    }
};

Index
buildIndex(const Options &opt, const Dataset &ds, Metrics &metrics)
{
    Index idx;
    const ExmaTable::Config cfg = tableConfig(opt, ds);
    const double t0 = now();
    if (opt.layout == "mono") {
        idx.table = std::make_unique<ExmaTable>(ds.ref, cfg);
        metrics.put("table_build_s", now() - t0);
    } else if (opt.layout == "sharded") {
        const ShardPlan plan = ShardPlan::fixedWidth(
            ds.ref.size(), opt.shards, opt.max_query_len);
        idx.sharded = std::make_unique<ShardedExmaTable>(
            ds.ref, plan, ShardedExmaTable::Config{cfg, 0});
        metrics.put("table_build_s", idx.sharded->buildSeconds());
    } else {
        const ShardPlan plan = ShardPlan::kmerPrefix(
            ds.ref, opt.shards, opt.max_query_len, opt.prefix_len);
        RouterConfig rcfg;
        rcfg.table = cfg;
        idx.router = std::make_unique<ShardRouter>(ds.ref, plan, rcfg);
        metrics.put("table_build_s", idx.router->buildSeconds());
    }
    return idx;
}

void
saveBuilt(const Index &idx, const Dataset &ds, const std::string &dir,
          Metrics &metrics)
{
    const double t0 = now();
    if (idx.table)
        saveIndex(*idx.table, ds.ref, dir);
    else if (idx.sharded)
        saveIndex(*idx.sharded, dir);
    else
        saveIndex(*idx.router, dir);
    metrics.put("index_save_s", now() - t0);
}

Index
loadSaved(const std::string &dir, Metrics &metrics)
{
    Index idx;
    idx.loaded = loadIndex(dir);
    metrics.put("index_load_s", idx.loaded.load_seconds);
    return idx;
}

const char *
kindName(IndexKind kind)
{
    switch (kind) {
    case IndexKind::Mono:
        return "mono";
    case IndexKind::ShardedText:
        return "sharded";
    case IndexKind::Routed:
        return "routed";
    }
    return "?";
}

/** Queries sampled off the reference: every one has >= 1 true hit. */
std::vector<std::vector<Base>>
sampleQueries(const Dataset &ds, u64 count, u64 len)
{
    len = std::min<u64>(len, ds.ref.size());
    Rng rng(42);
    std::vector<std::vector<Base>> queries(count);
    for (auto &q : queries) {
        const u64 pos = rng.below(ds.ref.size() - len + 1);
        q.assign(ds.ref.begin() + static_cast<long>(pos),
                 ds.ref.begin() + static_cast<long>(pos + len));
    }
    return queries;
}

int
cmdBuild(const Options &opt)
{
    Metrics metrics;
    const Dataset ds = loadDataset(opt);
    std::cout << "dataset " << ds.name << ": " << ds.ref.size()
              << " bases, layout " << opt.layout << ", " << opt.shards
              << " shard(s), mode " << opt.mode << "\n";
    const Index idx = buildIndex(opt, ds, metrics);
    saveBuilt(idx, ds, opt.out, metrics);
    metrics.put("ref_bases", static_cast<double>(ds.ref.size()));
    metrics.save(opt.json);
    std::cout << "saved " << opt.out << "\n";
    return 0;
}

int
cmdInfo(const Options &opt)
{
    Metrics metrics;
    const Index idx = loadSaved(opt.out, metrics);
    std::cout << "kind=" << kindName(idx.loaded.kind) << "\n";
    if (idx.loaded.table != nullptr) {
        std::cout << "k=" << idx.loaded.table->k()
                  << " rows=" << idx.loaded.table->rows() << "\n";
    } else if (idx.loaded.sharded != nullptr) {
        std::cout << "shards=" << idx.loaded.sharded->shardCount()
                  << " rows=" << idx.loaded.sharded->totalRows() << "\n";
    } else {
        std::cout << "shards=" << idx.loaded.router->shardCount()
                  << " rows=" << idx.loaded.router->totalRows()
                  << " prefix_len=" << idx.loaded.router->plan().prefixLen()
                  << "\n";
    }
    metrics.save(opt.json);
    return 0;
}

int
cmdVerify(const Options &opt)
{
    Metrics metrics;
    const Dataset ds = loadDataset(opt);
    const Index built = buildIndex(opt, ds, metrics);

    Index loaded = loadSaved(opt.out, metrics);
    // Route searches through the loaded structures.
    if (loaded.loaded.table)
        loaded.table = std::move(loaded.loaded.table);
    else if (loaded.loaded.sharded)
        loaded.sharded = std::move(loaded.loaded.sharded);
    else
        loaded.router = std::move(loaded.loaded.router);

    const u64 qlen = std::min<u64>(101, opt.max_query_len);
    const auto queries = sampleQueries(ds, opt.queries, qlen);
    const auto expect = built.search(queries);
    const auto got = loaded.search(queries);

    u64 mismatches = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
        if (expect[i] != got[i])
            ++mismatches;
        if (expect[i].empty()) {
            std::cerr << "query " << i
                      << ": no hits from the fresh build (sampled off "
                         "the reference, so this is a build bug)\n";
            ++mismatches;
        }
    }
    metrics.put("verify_queries", static_cast<double>(queries.size()));
    metrics.put("verify_mismatches", static_cast<double>(mismatches));
    metrics.save(opt.json);
    if (mismatches > 0) {
        std::cerr << "FAIL: " << mismatches << "/" << queries.size()
                  << " queries disagree between built and loaded index\n";
        return 1;
    }
    std::cout << "OK: " << queries.size()
              << " queries identical between built and loaded index\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    try {
        if (opt.cmd == "build")
            return cmdBuild(opt);
        if (opt.cmd == "info")
            return cmdInfo(opt);
        return cmdVerify(opt);
    } catch (const LoadError &e) {
        std::cerr << "exma-index: load error: " << e.what() << "\n";
        return 1;
    }
}
