#!/usr/bin/env python3
"""exma-lint: fast checks for project invariants clang-tidy can't express.

Seven rules, each born from a convention an earlier PR established and
that code review alone won't keep enforced:

  bare-assert        src/**.{hh,cc} must not use bare assert() or
                     include <cassert>/<assert.h>. Release builds keep
                     exma_assert; per-symbol hot paths use exma_dassert
                     (Debug-only, PR 3 convention). A bare assert
                     silently vanishes under NDEBUG *and* dodges the
                     panic handler's file/line formatting.

  bench-json         bench/bench_*.cc harnesses must join the --json
                     convention (bench::init, bench::jsonDestination,
                     or the bench_gbench_main.hh entry point), so every
                     harness can feed BENCH_*.json artifacts and the
                     bench-regression gate.

  concurrency-label  gtest suites that exercise threaded machinery
                     (ThreadPool, parallelFor, BatchSearcher, the
                     route/shard serving stack, a pool-parallel
                     KmerOccTable build, raw std::thread/std::async)
                     must carry the `concurrency` ctest LABEL in
                     tests/CMakeLists.txt — the TSan CI job runs
                     `ctest -L concurrency`, so a missing label means a
                     threaded suite is never sanitized.

  no-naked-future-get  a future .get() in src/route/ or src/fault/
                     (receiver named fut/futs/futures/...) must be
                     preceded within a few lines by a wait_for: the
                     serving tier's futures resolve from worker threads
                     that can die or hang, so every get must sit behind
                     an observed-ready / deadline-bounded wait, never
                     block unconditionally.

  mutex-annotations  src/** must not declare std::mutex (or friends),
                     the raw std lock adapters, or a raw
                     std::condition_variable outside
                     common/thread_annotations.hh. Shared state is an
                     exma::Mutex with EXMA_GUARDED_BY members locked
                     via exma::MutexLock, and waits go through
                     exma::CondVar (which takes the MutexLock
                     directly), so Clang's -Wthread-safety can prove
                     every access and the blocked-under-lock analyzer
                     can recognize every wait; a bare std::mutex or cv
                     is invisible to both.

  analyze-allow-reason  every `// analyze: allow(<pass>, <reason>)`
                     suppression for tools/analyze/exma_analyze.py
                     must name a real pass and carry a non-empty
                     reason. A reason-less allow is an unreviewable
                     mute; a typo'd pass name suppresses nothing and
                     rots silently.

  ondisk-pod-assert  every writeArray<T> / viewArray<T> call site (the
                     persistent .exma.* format, src/io/format.hh) must
                     static_assert sizeof(T) and
                     std::is_trivially_copyable_v<T> in the same file.
                     The arrays are mmap'd back and used in place, so a
                     silent struct-layout change (a reordered member, a
                     new field, a packing change) would reinterpret old
                     files as garbage; the paired asserts turn that
                     into a compile error at the write/read site,
                     forcing the author to bump kFormatVersion.

Usage:
    python3 tools/lint/exma_lint.py [--root DIR] [--rule NAME ...]
                                    [--json FILE] [--list-rules]

Exit status: 0 clean, 1 findings, 2 usage error.
Run directly or via CTest (lint.exma_lint); unit tests live in
tools/lint/test_exma_lint.py (no pytest dependency).
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


class Finding:
    """One lint violation, formatted like a compiler diagnostic."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def to_dict(self):
        return {"path": self.path, "line": self.line,
                "rule": self.rule, "message": self.message}


def strip_comments_and_strings(text):
    """Blank out //, /* */ comments and string/char literals, keeping
    newlines so line numbers survive. Regex-lite: good enough for this
    codebase's conventional C++ (no raw strings with embedded quotes,
    no trigraphs)."""

    out = []
    i = 0
    n = len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif (mode == "string" and c == '"') or \
                    (mode == "char" and c == "'"):
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def iter_matches(pattern, stripped_text):
    """Yield (line_number, match) for a regex over stripped text."""
    for m in re.finditer(pattern, stripped_text):
        yield stripped_text.count("\n", 0, m.start()) + 1, m


def read_text(path):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return fh.read()


def cxx_files_under(root, subdir):
    """Sorted repo-relative paths of .hh/.cc files below root/subdir."""
    result = []
    top = os.path.join(root, subdir)
    for dirpath, _dirnames, filenames in os.walk(top):
        for name in filenames:
            if name.endswith((".hh", ".cc")):
                full = os.path.join(dirpath, name)
                result.append(os.path.relpath(full, root))
    return sorted(result)


# --------------------------------------------------------------------------
# Rule: bare-assert
# --------------------------------------------------------------------------

BARE_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
CASSERT_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')


def check_bare_assert(root):
    findings = []
    for rel in cxx_files_under(root, "src"):
        stripped = strip_comments_and_strings(
            read_text(os.path.join(root, rel)))
        for line, _m in iter_matches(CASSERT_RE, stripped):
            findings.append(Finding(
                rel, line, "bare-assert",
                "<cassert> include in src/; use common/logging.hh "
                "(exma_assert / exma_dassert) instead"))
        for line, _m in iter_matches(BARE_ASSERT_RE, stripped):
            findings.append(Finding(
                rel, line, "bare-assert",
                "bare assert() in src/; use exma_assert (kept in "
                "release) or exma_dassert (Debug-only hot path)"))
    return findings


# --------------------------------------------------------------------------
# Rule: bench-json
# --------------------------------------------------------------------------

BENCH_JSON_MARKERS = (
    "bench::init",
    "jsonDestination",
    "bench_gbench_main.hh",
)


def check_bench_json(root):
    findings = []
    bench_dir = os.path.join(root, "bench")
    if not os.path.isdir(bench_dir):
        return findings
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("bench_") and name.endswith(".cc")):
            continue
        rel = os.path.join("bench", name)
        text = read_text(os.path.join(root, rel))
        if not any(marker in text for marker in BENCH_JSON_MARKERS):
            findings.append(Finding(
                rel, 1, "bench-json",
                "bench harness does not join the --json convention: "
                "call bench::init(argc, argv) first (or "
                "bench::jsonDestination / bench_gbench_main.hh for "
                "google-benchmark harnesses) so the harness can emit "
                "BENCH_*.json for the regression gate"))
    return findings


# --------------------------------------------------------------------------
# Rule: concurrency-label
# --------------------------------------------------------------------------

# Constructs whose presence in a test file means TSan must see it: pool
# machinery itself, the classes that own worker threads or fan work
# across the pool, and a KmerOccTable construction (its build goes
# pool-parallel above the row threshold).
CONCURRENCY_MACHINERY_RE = re.compile(
    r"\b(ThreadPool|parallelFor|BatchSearcher|ShardWorker|ShardRouter"
    r"|ShardedExmaTable|KmerOccTable|std::thread|std::jthread"
    r"|std::async)\b")

ADD_TEST_RE = re.compile(r"exma_add_test\(\s*([^\s)]+)([^)]*)\)")


def parse_test_registrations(cmake_text):
    """Yield (line, source, labels) per exma_add_test call."""
    stripped = re.sub(r"#[^\n]*", lambda m: " " * len(m.group(0)),
                      cmake_text)
    for m in ADD_TEST_RE.finditer(stripped):
        line = stripped.count("\n", 0, m.start()) + 1
        src = m.group(1)
        rest = m.group(2)
        labels = []
        lm = re.search(r"\bLABELS\b(.*)", rest, re.S)
        if lm:
            tail = lm.group(1)
            # LABELS consumes tokens until the next keyword or the end.
            for tok in tail.split():
                if tok in ("DEPS", "SOURCES"):
                    break
                labels.append(tok)
        yield line, src, labels


def check_concurrency_label(root):
    findings = []
    cmake_rel = os.path.join("tests", "CMakeLists.txt")
    cmake_path = os.path.join(root, cmake_rel)
    if not os.path.isfile(cmake_path):
        return findings
    for line, src, labels in parse_test_registrations(
            read_text(cmake_path)):
        test_rel = os.path.join("tests", src)
        test_path = os.path.join(root, test_rel)
        if not os.path.isfile(test_path):
            findings.append(Finding(
                cmake_rel, line, "concurrency-label",
                "exma_add_test registers missing file %s" % test_rel))
            continue
        stripped = strip_comments_and_strings(read_text(test_path))
        m = CONCURRENCY_MACHINERY_RE.search(stripped)
        if m and "concurrency" not in labels:
            findings.append(Finding(
                cmake_rel, line, "concurrency-label",
                "%s uses %s but its exma_add_test call lacks "
                "LABELS concurrency — the TSan CI job "
                "(ctest -L concurrency) will never sanitize it"
                % (test_rel, m.group(1))))
    return findings


# --------------------------------------------------------------------------
# Rule: no-naked-future-get
# --------------------------------------------------------------------------

# A .get() whose receiver is future-named: `fut.get()`, `futures[s].get()`,
# `at.fut.get()`. Receivers like `worker.get()` (a smart pointer) don't
# match; the convention is that future variables are named fut*.
NAKED_FUTURE_GET_RE = re.compile(
    r"\bfut\w*\s*(?:\[[^\]\n]*\]\s*)?\.\s*get\s*\(")

# A wait_for this close above the get is taken as the bounded wait whose
# observed-ready result the get consumes.
FUTURE_WAIT_WINDOW = 8

FUTURE_GET_SCAN_DIRS = (
    os.path.join("src", "route"),
    os.path.join("src", "fault"),
    os.path.join("src", "transport"),
)


def check_no_naked_future_get(root):
    findings = []
    for sub in FUTURE_GET_SCAN_DIRS:
        for rel in cxx_files_under(root, sub):
            stripped = strip_comments_and_strings(
                read_text(os.path.join(root, rel)))
            lines = stripped.split("\n")
            for line, _m in iter_matches(NAKED_FUTURE_GET_RE, stripped):
                window = lines[max(0, line - FUTURE_WAIT_WINDOW):line]
                if any("wait_for" in w for w in window):
                    continue
                findings.append(Finding(
                    rel, line, "no-naked-future-get",
                    "future .get() without a wait_for in the preceding "
                    "%d lines; serving-tier futures resolve from worker "
                    "threads that can die or hang, so gate every get "
                    "behind a deadline-bounded wait_for whose ready "
                    "status was observed" % FUTURE_WAIT_WINDOW))
    return findings


# --------------------------------------------------------------------------
# Rule: mutex-annotations
# --------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex"
    r"|recursive_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable(?:_any)?)\b")

MUTEX_EXEMPT = {os.path.join("src", "common", "thread_annotations.hh")}


def check_mutex_annotations(root):
    findings = []
    for rel in cxx_files_under(root, "src"):
        if rel in MUTEX_EXEMPT:
            continue
        stripped = strip_comments_and_strings(
            read_text(os.path.join(root, rel)))
        for line, m in iter_matches(RAW_MUTEX_RE, stripped):
            if m.group(1).startswith("condition_variable"):
                hint = ("use exma::CondVar "
                        "(common/thread_annotations.hh), whose waits "
                        "take the exma::MutexLock directly — raw cv "
                        "waits are invisible to -Wthread-safety and "
                        "to the blocked-under-lock analyzer")
            else:
                hint = ("use exma::Mutex + EXMA_GUARDED_BY members "
                        "and lock via exma::MutexLock "
                        "(common/thread_annotations.hh)")
            findings.append(Finding(
                rel, line, "mutex-annotations",
                "raw %s in src/ is invisible to -Wthread-safety; %s"
                % (m.group(0), hint)))
    return findings


# --------------------------------------------------------------------------
# Rule: ondisk-pod-assert
# --------------------------------------------------------------------------

# An explicit-template writeArray/viewArray call names the element type
# that hits the disk — and an explicit putPod/getPod names a type that
# crosses the router/worker process boundary in a wire frame; the
# definitions in src/io/format.hh and src/transport/wire.cc take the
# type from a deduced argument and never match this pattern.
ONDISK_CALL_RE = re.compile(
    r"\b(?:writeArray|viewArray|putPod|getPod)"
    r"\s*<\s*([A-Za-z_]\w*(?:::\w+)*)\s*>")

ONDISK_SCAN_DIRS = ("src", "tests", "tools", "bench")


def check_ondisk_pod_assert(root):
    findings = []
    for sub in ONDISK_SCAN_DIRS:
        for rel in cxx_files_under(root, sub):
            stripped = strip_comments_and_strings(
                read_text(os.path.join(root, rel)))
            first_use = {}
            for line, m in iter_matches(ONDISK_CALL_RE, stripped):
                first_use.setdefault(m.group(1), line)
            for type_name in sorted(first_use):
                escaped = re.escape(type_name)
                has_size = re.search(
                    r"static_assert\s*\(\s*sizeof\s*\(\s*%s\s*\)"
                    % escaped, stripped)
                has_triv = re.search(
                    r"static_assert\s*\(\s*std::is_trivially_copyable_v"
                    r"\s*<\s*%s\s*>" % escaped, stripped)
                if has_size and has_triv:
                    continue
                missing = []
                if not has_size:
                    missing.append("static_assert(sizeof(%s) == ...)"
                                   % type_name)
                if not has_triv:
                    missing.append(
                        "static_assert(std::is_trivially_copyable_v<%s>)"
                        % type_name)
                findings.append(Finding(
                    rel, first_use[type_name], "ondisk-pod-assert",
                    "%s is written to / read from the on-disk .exma.* "
                    "format but this file lacks %s — without the "
                    "paired asserts a silent layout change corrupts "
                    "existing index files instead of failing to "
                    "compile (add the asserts, and bump kFormatVersion "
                    "if the layout really changed)"
                    % (type_name, " and ".join(missing))))
    return findings


# --------------------------------------------------------------------------
# Rule: analyze-allow-reason
# --------------------------------------------------------------------------

# Mirrors SUPPRESS_RE in tools/analyze/cxxparse.py (kept in sync by the
# unit tests on both sides). Scans raw text — the allow lives in a
# comment, which strip_comments_and_strings would blank out.
ANALYZE_ALLOW_RE = re.compile(
    r"(?://|/\*)\s*analyze:\s*allow\(\s*([\w-]+)\s*"
    r"(?:,\s*([^)]*?)\s*)?\)")

ANALYZE_PASSES = ("blocked-under-lock", "layering", "lock-order",
                  "ondisk-abi")

ANALYZE_ALLOW_SCAN_DIRS = ("src", "tests", "tools", "bench")


def check_analyze_allow_reason(root):
    findings = []
    for sub in ANALYZE_ALLOW_SCAN_DIRS:
        for rel in cxx_files_under(root, sub):
            text = read_text(os.path.join(root, rel))
            for m in ANALYZE_ALLOW_RE.finditer(text):
                line = text.count("\n", 0, m.start()) + 1
                pass_name, reason = m.group(1), m.group(2)
                if pass_name not in ANALYZE_PASSES:
                    findings.append(Finding(
                        rel, line, "analyze-allow-reason",
                        "analyze: allow(%s, ...) names an unknown "
                        "pass — it suppresses nothing; one of: %s"
                        % (pass_name, ", ".join(ANALYZE_PASSES))))
                if not (reason or "").strip():
                    findings.append(Finding(
                        rel, line, "analyze-allow-reason",
                        "analyze: allow(%s) has no reason; write "
                        "allow(%s, <why this site is deliberate>) so "
                        "the suppression is reviewable"
                        % (pass_name, pass_name)))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = {
    "analyze-allow-reason": check_analyze_allow_reason,
    "bare-assert": check_bare_assert,
    "bench-json": check_bench_json,
    "concurrency-label": check_concurrency_label,
    "mutex-annotations": check_mutex_annotations,
    "no-naked-future-get": check_no_naked_future_get,
    "ondisk-pod-assert": check_ondisk_pod_assert,
}


def run_rules(root, rules=None):
    findings = []
    for name in sorted(rules or RULES):
        findings.extend(RULES[name](root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None):
    default_root = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, os.pardir))
    parser = argparse.ArgumentParser(
        prog="exma_lint",
        description="Project-invariant lints for the EXMA tree.")
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two levels up "
                             "from this script)")
    parser.add_argument("--rule", action="append", choices=sorted(RULES),
                        help="run only this rule (repeatable)")
    parser.add_argument("--json", metavar="FILE",
                        help="also write findings as JSON (CI artifact)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print("exma-lint: %s does not look like the repo root "
              "(no src/)" % root, file=sys.stderr)
        return 2

    findings = run_rules(root, args.rule)
    for f in findings:
        print(f)
    if args.json:
        payload = {
            "rules": sorted(args.rule or RULES),
            "findings": [f.to_dict() for f in findings],
        }
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
    if findings:
        print("exma-lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    n_files = len(cxx_files_under(root, "src"))
    print("exma-lint: OK (%d src files, rules: %s)"
          % (n_files, ", ".join(sorted(args.rule or RULES))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
