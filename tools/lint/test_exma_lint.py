#!/usr/bin/env python3
"""Unit tests for exma_lint.py: one positive (violation detected) and
one negative (clean code passes) fixture per rule, plus CLI exit-code
coverage — including the synthetic missing-`concurrency`-label case the
rule exists for.

Run directly (no pytest dependency): python3 tools/lint/test_exma_lint.py -v
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import exma_lint  # noqa: E402  (path set up above)

LINTER = os.path.join(HERE, "exma_lint.py")


class FixtureTree:
    """A synthetic repo root the rules can run against."""

    def __init__(self, tmpdir):
        self.root = tmpdir

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        return rel


class LintTestCase(unittest.TestCase):

    def setUp(self):
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        self.tree = FixtureTree(tmp.name)
        # Every fixture root needs src/ to look like a repo.
        self.tree.write("src/common/placeholder.hh",
                        "// empty placeholder\n")

    def rules(self, *names):
        return exma_lint.run_rules(self.tree.root, names)

    def rule_ids(self, findings):
        return [(f.rule, f.path) for f in findings]


class BareAssertTest(LintTestCase):

    def test_bare_assert_and_cassert_include_are_flagged(self):
        rel = self.tree.write("src/core/bad.cc", """\
#include <cassert>
void f(int x)
{
    assert(x > 0);
}
""")
        findings = self.rules("bare-assert")
        self.assertEqual([(f.rule, f.path, f.line) for f in findings],
                         [("bare-assert", rel, 1),
                          ("bare-assert", rel, 4)])

    def test_exma_asserts_and_commented_asserts_pass(self):
        self.tree.write("src/core/good.cc", """\
#include "common/logging.hh"
void f(int x)
{
    exma_assert(x > 0, "boundary");
    exma_dassert(x < 9, "hot path");
    static_assert(sizeof(int) == 4, "platform");
    // a comment mentioning assert( is fine
    const char *s = "assert( in a string is fine";
    (void)s;
}
""")
        self.assertEqual(self.rules("bare-assert"), [])

    def test_tests_and_bench_may_use_gtest_assertions(self):
        # Scope is src/ only: ASSERT_EQ etc. in tests never match, and
        # even a bare assert in tests/ is out of scope.
        self.tree.write("tests/core/test_x.cc",
                        "#include <cassert>\nvoid t() { assert(1); }\n")
        self.assertEqual(self.rules("bare-assert"), [])


class BenchJsonTest(LintTestCase):

    def test_harness_without_json_convention_is_flagged(self):
        rel = self.tree.write("bench/bench_rogue.cc", """\
int main()
{
    return 0;
}
""")
        findings = self.rules("bench-json")
        self.assertEqual(self.rule_ids(findings),
                         [("bench-json", rel)])

    def test_init_jsondestination_and_gbench_all_pass(self):
        self.tree.write("bench/bench_tables.cc",
                        "int main(int argc, char **argv)\n"
                        "{ exma::bench::init(argc, argv); }\n")
        self.tree.write("bench/bench_micro.cc",
                        "#include \"bench_gbench_main.hh\"\n")
        self.tree.write("bench/bench_custom.cc",
                        "int main(int argc, char **argv)\n"
                        "{ auto p = exma::bench::jsonDestination(argc, argv); }\n")
        # Non-harness files in bench/ are out of scope.
        self.tree.write("bench/util_helper.cc", "int x;\n")
        self.assertEqual(self.rules("bench-json"), [])


class ConcurrencyLabelTest(LintTestCase):

    CMAKE = """\
# comment with exma_add_test(common/in_comment.cc) must be ignored
exma_add_test(common/test_pool.cc DEPS exma::common
    LABELS concurrency)
exma_add_test(common/test_plain.cc DEPS exma::common)
exma_add_test(route/test_router.cc DEPS exma::route
    LABELS concurrency slow)
"""

    def test_synthetic_missing_label_case_is_flagged(self):
        # The case the rule exists for: a suite that spins up the pool
        # but was registered without the concurrency label, so the TSan
        # job (ctest -L concurrency) would silently skip it.
        self.tree.write("tests/CMakeLists.txt", self.CMAKE + """\
exma_add_test(batch/test_unlabelled.cc DEPS exma::batch)
""")
        self.tree.write("tests/common/test_pool.cc",
                        "#include \"common/thread_pool.hh\"\n"
                        "TEST(Pool, X) { exma::ThreadPool p(2); }\n")
        self.tree.write("tests/common/test_plain.cc",
                        "TEST(Plain, X) {}\n")
        self.tree.write("tests/route/test_router.cc",
                        "TEST(Router, X) { exma::ShardRouter r(a, b, c); }\n")
        self.tree.write("tests/batch/test_unlabelled.cc",
                        "TEST(Batch, X) { exma::BatchSearcher s(t, cfg); }\n")
        findings = self.rules("concurrency-label")
        self.assertEqual(len(findings), 1, findings)
        self.assertEqual(findings[0].rule, "concurrency-label")
        self.assertIn("test_unlabelled.cc", findings[0].message)
        self.assertIn("BatchSearcher", findings[0].message)
        # The finding points at the registration site, not the test.
        self.assertEqual(findings[0].path,
                         os.path.join("tests", "CMakeLists.txt"))

    def test_labelled_and_thread_free_suites_pass(self):
        self.tree.write("tests/CMakeLists.txt", self.CMAKE)
        self.tree.write("tests/common/test_pool.cc",
                        "TEST(Pool, X) { exma::parallelFor(8, 1, fn); }\n")
        self.tree.write("tests/common/test_plain.cc",
                        "// ThreadPool only named in a comment\n"
                        "TEST(Plain, X) {}\n")
        self.tree.write("tests/route/test_router.cc",
                        "TEST(Router, X) { exma::ShardWorker w(n, t, r, s); }\n")
        self.assertEqual(self.rules("concurrency-label"), [])

    def test_registration_of_missing_file_is_flagged(self):
        self.tree.write("tests/CMakeLists.txt",
                        "exma_add_test(common/test_gone.cc DEPS x)\n")
        findings = self.rules("concurrency-label")
        self.assertEqual(len(findings), 1)
        self.assertIn("missing file", findings[0].message)


class MutexAnnotationsTest(LintTestCase):

    def test_raw_std_mutex_member_is_flagged(self):
        rel = self.tree.write("src/serve/cache.hh", """\
#include <mutex>
class HotCache
{
    std::mutex mtx_;
    void put() { std::lock_guard<std::mutex> lock(mtx_); }
};
""")
        findings = self.rules("mutex-annotations")
        self.assertEqual(
            [(f.rule, f.path) for f in findings],
            [("mutex-annotations", rel)] * 3)  # decl + guard + its arg

    def test_raw_condition_variable_is_flagged(self):
        rel = self.tree.write("src/serve/queue.hh", """\
#include <condition_variable>
class Queue
{
    std::condition_variable cv_;
    std::condition_variable_any any_cv_;
};
""")
        findings = self.rules("mutex-annotations")
        self.assertEqual(
            [(f.rule, f.path) for f in findings],
            [("mutex-annotations", rel)] * 2)
        self.assertIn("exma::CondVar", findings[0].message)

    def test_exma_condvar_passes(self):
        self.tree.write("src/serve/queue.hh", """\
#include "common/thread_annotations.hh"
class Queue
{
    exma::Mutex mtx_;
    exma::CondVar cv_;
    void drain() { exma::MutexLock lock(mtx_); cv_.wait(lock); }
};
""")
        self.assertEqual(self.rules("mutex-annotations"), [])

    def test_exma_mutex_and_exempt_header_pass(self):
        self.tree.write("src/common/thread_annotations.hh", """\
#include <mutex>
class Mutex { std::mutex mtx_; };
class MutexLock { std::unique_lock<std::mutex> lock_; };
""")
        self.tree.write("src/serve/cache.hh", """\
#include "common/thread_annotations.hh"
class HotCache
{
    exma::Mutex mtx_;
    long hits_ EXMA_GUARDED_BY(mtx_) = 0;
    void put() { exma::MutexLock lock(mtx_); ++hits_; }
};
""")
        # std::mutex in a comment or string must not trip the rule.
        self.tree.write("src/serve/notes.cc",
                        "// never hold a std::mutex here\n"
                        "const char *kWhy = \"std::mutex is banned\";\n")
        self.assertEqual(self.rules("mutex-annotations"), [])


class NoNakedFutureGetTest(LintTestCase):

    def test_unguarded_get_in_route_is_flagged(self):
        rel = self.tree.write("src/route/gather.cc", """\
void gather(std::future<Response> &fut)
{
    Response r = fut.get();
}
""")
        findings = self.rules("no-naked-future-get")
        self.assertEqual([(f.rule, f.path, f.line) for f in findings],
                         [("no-naked-future-get", rel, 3)])
        self.assertIn("wait_for", findings[0].message)

    def test_wait_for_within_window_passes(self):
        self.tree.write("src/route/gather.cc", """\
void gather(std::vector<std::future<Response>> &futures, size_t s)
{
    if (futures[s].wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
        return;
    Response r = futures[s].get();
}
""")
        self.tree.write("src/fault/reap.cc", """\
void reap(Attempt &at)
{
    while (at.fut.wait_for(std::chrono::milliseconds(10)) !=
           std::future_status::ready)
        at.worker->kill();
    at.fut.get();
}
""")
        self.assertEqual(self.rules("no-naked-future-get"), [])

    def test_wait_for_outside_window_does_not_count(self):
        pad = "    side_effect();\n" * exma_lint.FUTURE_WAIT_WINDOW
        rel = self.tree.write("src/fault/stale.cc", """\
void stale(std::future<int> &fut)
{
    fut.wait_for(std::chrono::seconds(1));
%s    int v = fut.get();
}
""" % pad)
        findings = self.rules("no-naked-future-get")
        self.assertEqual(self.rule_ids(findings),
                         [("no-naked-future-get", rel)])

    def test_smart_pointer_get_and_other_dirs_are_out_of_scope(self):
        # worker.get() is a shared_ptr, not a future; and future code
        # outside src/route//src/fault is another tier's business.
        self.tree.write("src/route/ptr.cc",
                        "ShardWorker *w = at.worker.get();\n")
        self.tree.write("src/batch/elsewhere.cc",
                        "int v = fut.get();\n")
        self.assertEqual(self.rules("no-naked-future-get"), [])


class OndiskPodAssertTest(LintTestCase):

    def test_write_site_without_asserts_is_flagged(self):
        rel = self.tree.write("src/io/save_thing.cc", """\
void saveThing(FileBuilder &fb, std::span<const Block> blocks)
{
    fb.writeArray<Block>(7, blocks);
}
""")
        findings = self.rules("ondisk-pod-assert")
        self.assertEqual(len(findings), 1, findings)
        self.assertEqual((findings[0].rule, findings[0].path,
                          findings[0].line),
                         ("ondisk-pod-assert", rel, 3))
        self.assertIn("sizeof(Block)", findings[0].message)
        self.assertIn("is_trivially_copyable_v<Block>", findings[0].message)
        self.assertIn("kFormatVersion", findings[0].message)

    def test_half_asserted_type_names_the_missing_half(self):
        self.tree.write("src/io/load_thing.cc", """\
static_assert(sizeof(Block) == 32);
std::span<const Block> loadThing(const FileView &view)
{
    return view.viewArray<Block>(7);
}
""")
        findings = self.rules("ondisk-pod-assert")
        self.assertEqual(len(findings), 1)
        self.assertIn("is_trivially_copyable_v<Block>",
                      findings[0].message)
        self.assertNotIn("sizeof(Block) == ...", findings[0].message)

    def test_asserted_sites_pass_including_qualified_names(self):
        self.tree.write("src/io/good.cc", """\
static_assert(sizeof(u32) == 4);
static_assert(std::is_trivially_copyable_v<u32>);
static_assert(sizeof(PackedRank::Block) == 32,
              "on-disk layout: bump kFormatVersion on change");
static_assert(std::is_trivially_copyable_v<PackedRank::Block>);
void save(FileBuilder &fb)
{
    fb.writeArray<u32>(1, bases);
    fb.writeArray<PackedRank::Block>(2, blocks);
}
std::span<const u32> load(const FileView &view)
{
    return view.viewArray<u32>(1);
}
""")
        # The template definitions themselves (deduced T, no explicit
        # <Type> at a call) are out of scope.
        self.tree.write("src/io/format.hh", """\
template <typename T>
void writeArray(u32 tag, std::span<const T> data)
{
    static_assert(std::is_trivially_copyable_v<T>);
}
""")
        self.assertEqual(self.rules("ondisk-pod-assert"), [])

    def test_tests_and_tools_are_in_scope(self):
        rel = self.tree.write("tests/io/test_fmt.cc", """\
TEST(Fmt, X)
{
    fb.writeArray<u64>(1, words);
}
""")
        findings = self.rules("ondisk-pod-assert")
        self.assertEqual(self.rule_ids(findings),
                         [("ondisk-pod-assert", rel)])


class AnalyzeAllowReasonTest(LintTestCase):

    def test_reasonless_allow_is_flagged(self):
        rel = self.tree.write("src/core/muted.cc", """\
// analyze: allow(lock-order)
void f();
""")
        findings = self.rules("analyze-allow-reason")
        self.assertEqual(self.rule_ids(findings),
                         [("analyze-allow-reason", rel)])
        self.assertIn("no reason", findings[0].message)

    def test_unknown_pass_is_flagged(self):
        rel = self.tree.write("src/core/typo.cc", """\
// analyze: allow(lock-ordering, the pass name is wrong)
void f();
""")
        findings = self.rules("analyze-allow-reason")
        self.assertEqual(self.rule_ids(findings),
                         [("analyze-allow-reason", rel)])
        self.assertIn("unknown", findings[0].message)

    def test_reasoned_allow_passes_and_tests_in_scope(self):
        self.tree.write("src/core/ok.cc", """\
// analyze: allow(ondisk-abi, scratch file, never persisted)
void f();
""")
        self.assertEqual(self.rules("analyze-allow-reason"), [])
        rel = self.tree.write("tests/static/muted.cc",
                              "/* analyze: allow(layering) */\n")
        findings = self.rules("analyze-allow-reason")
        self.assertEqual(self.rule_ids(findings),
                         [("analyze-allow-reason", rel)])

    def test_regex_agrees_with_analyzer(self):
        # The linter's regex must keep accepting what the analyzer's
        # suppression scanner accepts (tools/analyze/cxxparse.py).
        sys.path.insert(0, os.path.join(HERE, os.pardir, "analyze"))
        try:
            import cxxparse
        finally:
            sys.path.pop(0)
        text = "// analyze: allow(lock-order, dual-locked on purpose)\n"
        sup = cxxparse.scan_suppressions(text)
        m = exma_lint.ANALYZE_ALLOW_RE.search(text)
        self.assertEqual(sup[1], [(m.group(1), m.group(2))])
        sys.path.insert(0, os.path.join(HERE, os.pardir, "analyze"))
        try:
            import exma_analyze
        finally:
            sys.path.pop(0)
        self.assertEqual(exma_lint.ANALYZE_PASSES,
                         tuple(sorted(exma_analyze.PASSES)))


class StripperTest(LintTestCase):

    def test_stripping_preserves_line_numbers(self):
        text = "int a; /* multi\nline\ncomment */ assert(x);\n"
        stripped = exma_lint.strip_comments_and_strings(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))
        line, _ = next(exma_lint.iter_matches(
            exma_lint.BARE_ASSERT_RE, stripped))
        self.assertEqual(line, 3)

    def test_escaped_quotes_inside_strings(self):
        text = 'const char *s = "he said \\"assert(\\" loudly";\n'
        stripped = exma_lint.strip_comments_and_strings(text)
        self.assertNotIn("assert", stripped)


class CliTest(LintTestCase):

    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, LINTER, *args],
            capture_output=True, text=True)

    def test_clean_tree_exits_zero(self):
        proc = self.run_cli("--root", self.tree.root)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("exma-lint: OK", proc.stdout)

    def test_findings_exit_one_with_compiler_style_lines(self):
        self.tree.write("src/core/bad.cc", "void f() { assert(1); }\n")
        proc = self.run_cli("--root", self.tree.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("src/core/bad.cc:1: [bare-assert]", proc.stdout)
        self.assertIn("1 finding(s)", proc.stderr)

    def test_bogus_root_is_a_usage_error(self):
        empty = os.path.join(self.tree.root, "not-a-repo")
        os.makedirs(empty)
        proc = self.run_cli("--root", empty)
        self.assertEqual(proc.returncode, 2)

    def test_rule_filter_runs_only_that_rule(self):
        self.tree.write("src/core/bad.cc", "void f() { assert(1); }\n")
        proc = self.run_cli("--root", self.tree.root,
                            "--rule", "bench-json")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_json_output_mirrors_findings(self):
        self.tree.write("src/core/bad.cc", "void f() { assert(1); }\n")
        out = os.path.join(self.tree.root, "lint.json")
        proc = self.run_cli("--root", self.tree.root, "--json", out)
        self.assertEqual(proc.returncode, 1)
        with open(out, encoding="utf-8") as fh:
            payload = json.load(fh)
        self.assertEqual(len(payload["findings"]), 1)
        self.assertEqual(payload["findings"][0]["rule"], "bare-assert")
        self.assertEqual(payload["findings"][0]["line"], 1)
        self.assertIn("bare-assert", payload["rules"])

    def test_real_repo_is_clean(self):
        # The tree this file ships in must satisfy its own linter
        # (mirrors the CI exma-lint job).
        proc = self.run_cli()
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
