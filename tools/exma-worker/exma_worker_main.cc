/**
 * @file
 * The out-of-process shard worker: mmap-loads one shard's persisted
 * files and serves wire.hh frames on an inherited socket fd until the
 * router closes the stream. One process per replica — the paper's
 * per-channel parallelism with real OS-level isolation: a crash here
 * is a closed socket and a WorkerDown at the router, never a
 * corrupted router address space.
 *
 * Spawned by SocketTransport as
 *
 *   exma-worker --fd 3 --name <shard>/r<i> --state table|scan|empty
 *               [--stem <dir>/shardNNNN]
 *
 * Request compute is transport/worker_core.cc — the same code the
 * in-process ShardWorker runs, which is what makes socket serving
 * differentially testable against the inbox path. Compute exceptions
 * become Failed responses; channel breakage ends the process (the
 * router translates the EOF into WorkerDown and respawns).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "io/table_io.hh"
#include "transport/wire.hh"
#include "transport/worker_core.hh"

namespace {

using namespace exma;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --fd N --name NAME --state table|scan|empty "
                 "[--stem STEM]\n",
                 argv0);
    return 2;
}

/**
 * Serve requests off @p fd until the peer closes the stream.
 * Heartbeat frames ride between request and response (throttled — the
 * router only needs to see *movement*, not every chunk) so the
 * supervisor can tell a slow batch from a hung process.
 */
int
serveLoop(int fd, const ShardState &st)
{
    WireFrame frame;
    while (readFrame(fd, frame)) {
        if (frame.header.type != kFrameRequest) {
            std::fprintf(stderr,
                         "exma-worker: unexpected frame type %u\n",
                         unsigned{frame.header.type});
            return 1;
        }
        WorkerResponse resp;
        try {
            const WorkerRequest req = decodeRequest(frame.body, fd);
            try {
                u64 ticks = 0;
                resp = serveShardRequest(st, req, [&] {
                    if (++ticks % 64 == 0)
                        writeFrame(fd, kFrameHeartbeat,
                                   frame.header.seq, {});
                });
                resp.canary = responseCanary(resp);
            } catch (const std::exception &e) {
                // Compute threw: a typed Failed response, exactly as
                // the in-process worker reports it.
                resp = WorkerResponse{};
                resp.status = WorkerStatus::Failed;
                resp.error = e.what();
                resp.ids = req.batch.ids();
            }
        } catch (const TransportError &e) {
            // The frame decoded as no valid request. Answer Failed so
            // the router retries elsewhere; if the channel itself is
            // sick the write below ends the process.
            resp = WorkerResponse{};
            resp.status = WorkerStatus::Failed;
            resp.error = e.what();
        }
        const std::vector<u8> body = encodeResponse(resp);
        writeFrame(fd, kFrameResponse, frame.header.seq, body);
    }
    return 0; // clean EOF: the router closed the channel
}

} // namespace

int
main(int argc, char **argv)
{
    int fd = 3;
    std::string name = "exma-worker";
    std::string state;
    std::string stem;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i + 1 >= argc)
            return usage(argv[0]);
        if (arg == "--fd")
            fd = std::atoi(argv[++i]);
        else if (arg == "--name")
            name = argv[++i];
        else if (arg == "--state")
            state = argv[++i];
        else if (arg == "--stem")
            stem = argv[++i];
        else
            return usage(argv[0]);
    }
    if (state != "table" && state != "scan" && state != "empty")
        return usage(argv[0]);
    if (state != "empty" && stem.empty())
        return usage(argv[0]);

    ignoreSigpipe();

    try {
        // Keep the loaded state alive for the whole serving loop; the
        // table's hot arrays live inside the mmaps.
        LoadedExmaTable table;
        LoadedScanShard scan;
        ShardState st;
        if (state == "table") {
            table = loadTableFiles(stem);
            st.table = table.table.get();
        } else if (state == "scan") {
            scan = loadScanFiles(stem);
            st.scan_ref = &scan.text;
            st.segments = &scan.segments;
        }
        validateShardState(name, st);
        return serveLoop(fd, st);
    } catch (const TransportError &e) {
        // Channel breakage mid-stream: the router already sees the
        // closed socket; the message is for human post-mortems.
        std::fprintf(stderr, "exma-worker[%s]: %s\n", name.c_str(),
                     e.what());
        return 1;
    } catch (const std::exception &e) {
        // Load failure: exit before serving a single frame — the
        // router reads EOF and treats the replica as down.
        std::fprintf(stderr, "exma-worker[%s]: %s\n", name.c_str(),
                     e.what());
        return 1;
    }
}
