"""lock-order: build the mutex acquisition graph and reject cycles.

An edge A -> B means some code path acquires B while holding A. Edges
come from two sources:

* direct nesting — a `MutexLock` (or manual `.lock()`) taken while
  another is held in the same function body;
* one level of inlining — a call made while holding A to a project
  function whose body acquires B. Calls resolve per
  project.resolve_call (qualified tail, else every same-named
  definition — conservative; suppress a deliberate site with
  `// analyze: allow(lock-order, reason)`).

Every cycle is reported once, with the two (or more) stack-shaped
witness paths that close it — one line per edge showing who held what
where. A cycle is suppressed only if every edge on it is suppressed.
"""

from ir import Finding

PASS = "lock-order"


class Edge:
    __slots__ = ("src", "dst", "path", "line", "witness")

    def __init__(self, src, dst, path, line, witness):
        self.src = src
        self.dst = dst
        self.path = path
        self.line = line
        self.witness = witness  # human-readable stack description


def build_edges(proj):
    edges = []
    for fn in proj.functions:
        for acq in fn.acquires:
            for held in acq.under:
                if held == acq.mutex:
                    continue
                edges.append(Edge(
                    held, acq.mutex, fn.path, acq.line,
                    "%s (%s:%d) acquires %s while holding %s"
                    % (fn.qual, fn.path, acq.line, acq.mutex, held)))
        for call in fn.calls:
            if not call.locks:
                continue
            for callee in proj.resolve_call(call):
                if callee is fn:
                    continue
                for acq in callee.acquires:
                    for held in call.locks:
                        if held == acq.mutex:
                            continue
                        edges.append(Edge(
                            held, acq.mutex, fn.path, call.line,
                            "%s (%s:%d) holds %s and calls %s, which "
                            "acquires %s (%s:%d)"
                            % (fn.qual, fn.path, call.line, held,
                               callee.qual, acq.mutex, callee.path,
                               acq.line)))
    return edges


def _cycles(nodes, adj):
    """Elementary cycles via DFS from each node in sorted order; each
    cycle reported once, rotated to start at its smallest node."""
    seen = set()
    cycles = []
    for start in sorted(nodes):
        stack = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adj.get(node, ())):
                if nxt == start:
                    cyc = tuple(path)
                    smallest = min(range(len(cyc)),
                                   key=lambda i: cyc[i])
                    canon = cyc[smallest:] + cyc[:smallest]
                    if canon not in seen:
                        seen.add(canon)
                        cycles.append(list(canon))
                elif nxt not in path and nxt > start and len(path) < 8:
                    stack.append((nxt, path + [nxt]))
    return cycles


def run(proj):
    edges = build_edges(proj)
    adj = {}
    by_pair = {}
    for e in edges:
        adj.setdefault(e.src, set()).add(e.dst)
        by_pair.setdefault((e.src, e.dst), []).append(e)
    nodes = set(adj)
    for dsts in adj.values():
        nodes |= dsts
    findings = []
    for cyc in _cycles(nodes, adj):
        pairs = [(cyc[i], cyc[(i + 1) % len(cyc)])
                 for i in range(len(cyc))]
        witnesses = [min(by_pair[p], key=lambda e: (e.path, e.line))
                     for p in pairs]
        if all(proj.suppressed(PASS, w.path, w.line)
               for w in witnesses):
            continue
        head = witnesses[0]
        lines = ["lock-order cycle: " + " -> ".join(cyc + [cyc[0]])]
        for i, w in enumerate(witnesses, 1):
            lines.append("  path %d: %s" % (i, w.witness))
        findings.append(Finding(head.path, head.line, PASS,
                                "\n".join(lines)))
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings
