#!/usr/bin/env python3
"""Unit tests for the analyzer framework: the syntactic frontend's
AST-walk helpers, the clang-JSON lowering (against a checked-in
clang-style dump in testdata/mini_ast.json — both frontends must
produce agreeing IR), each pass's positive/negative behavior on
synthetic IR, suppression comments, and the ABI lock round-trip.

Run directly (no pytest dependency):
    python3 tools/analyze/test_exma_analyze.py -v
"""

import json
import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import clangjson  # noqa: E402
import compiledb  # noqa: E402
import cxxparse  # noqa: E402
import pass_blocked  # noqa: E402
import pass_layering  # noqa: E402
import pass_lock_order  # noqa: E402
import pass_ondisk_abi  # noqa: E402
from ir import SourceIR  # noqa: E402
from project import Project  # noqa: E402


def parse(src, path="src/demo/demo.cc"):
    return cxxparse.parse_source(path, src)


def project_from(*irs, sources=None):
    proj = Project("/nonexistent")
    for rel, text in (sources or {}).items():
        proj.add_source_text(rel, text,
                             cxxparse.scan_suppressions(text))
    for ir in irs:
        if ir.path not in proj.sources:
            proj.add_source_text(ir.path, "", ir.suppressions)
        proj.add_ir(ir)
    return proj


class StripperTest(unittest.TestCase):

    def test_preserves_lines_and_blanks_strings(self):
        src = 'a; // comment "str\nb = "x;y"; /* c1\nc2 */ c;\n'
        out = cxxparse.strip_comments_and_strings(src)
        self.assertEqual(src.count("\n"), out.count("\n"))
        self.assertNotIn("comment", out)
        self.assertNotIn("x;y", out)
        self.assertNotIn("c1", out)
        self.assertIn("b =", out)
        self.assertIn("c;", out)

    def test_escaped_quote_in_string(self):
        out = cxxparse.strip_comments_and_strings(
            'p("a\\"b"); q();')
        self.assertIn("q()", out)


class SuppressionTest(unittest.TestCase):

    def test_allow_with_reason(self):
        sup = cxxparse.scan_suppressions(
            "x;\n"
            "y; // analyze: allow(lock-order, startup is "
            "single-threaded)\n")
        self.assertEqual(
            sup, {2: [("lock-order",
                       "startup is single-threaded")]})

    def test_allow_without_reason(self):
        sup = cxxparse.scan_suppressions(
            "// analyze: allow(layering)\n")
        self.assertEqual(sup, {1: [("layering", "")]})

    def test_applies_to_line_and_line_above(self):
        ir = parse("// analyze: allow(lock-order, x)\nint a;\n")
        self.assertTrue(ir.suppressed("lock-order", 1))
        self.assertTrue(ir.suppressed("lock-order", 2))
        self.assertFalse(ir.suppressed("lock-order", 3))
        self.assertFalse(ir.suppressed("blocked-under-lock", 2))


class SyntaxFrontendTest(unittest.TestCase):

    def test_member_function_and_nested_locks(self):
        ir = parse(
            "namespace exma {\n"
            "class A {\n"
            "  void f() {\n"
            "    MutexLock a(mtx_);\n"
            "    {\n"
            "      MutexLock b(aux_mtx_);\n"
            "      use();\n"
            "    }\n"
            "    tail();\n"
            "  }\n"
            "  Mutex mtx_;\n"
            "  Mutex aux_mtx_;\n"
            "};\n"
            "}\n")
        (f,) = ir.functions
        self.assertEqual(f.qual, "exma::A::f")
        self.assertEqual(
            [(a.mutex, list(a.under)) for a in f.acquires],
            [("A::mtx_", []), ("A::aux_mtx_", ["A::mtx_"])])
        calls = {c.callee: list(c.locks) for c in f.calls}
        self.assertEqual(calls["use"], ["A::mtx_", "A::aux_mtx_"])
        # the inner block's lock released at its closing brace
        self.assertEqual(calls["tail"], ["A::mtx_"])

    def test_out_of_line_method_with_initializer_list(self):
        ir = parse(
            "namespace exma {\n"
            "Worker::Worker(int n) : n_(n), state_(idle) {\n"
            "  MutexLock lock(mtx_);\n"
            "}\n"
            "}\n")
        (f,) = ir.functions
        self.assertEqual(f.qual, "exma::Worker::Worker")
        self.assertEqual(f.cls, "Worker")
        self.assertEqual(f.acquires[0].mutex, "Worker::mtx_")

    def test_local_reference_resolves_owner_type(self):
        ir = parse(
            "namespace exma {\n"
            "void install() {\n"
            "  InjectorOwner &slot = injectorOwner();\n"
            "  MutexLock lock(slot.mtx);\n"
            "}\n"
            "}\n")
        (f,) = ir.functions
        self.assertEqual(f.acquires[0].mutex, "InjectorOwner::mtx")

    def test_cv_wait_args_capture_lock_var(self):
        ir = parse(
            "void A::run() {\n"
            "  MutexLock lock(mtx_);\n"
            "  cv_.wait(lock);\n"
            "}\n")
        (f,) = ir.functions
        wait = [c for c in f.calls if c.callee == "wait"][0]
        self.assertEqual(wait.receiver, "cv_")
        self.assertIn("lock", wait.args)
        self.assertEqual(list(wait.lock_vars), ["lock"])

    def test_record_fields_with_arrays_and_macros(self):
        ir = parse(
            "namespace exma {\n"
            "struct FileHeader {\n"
            "  char magic[8] = {};\n"
            "  u32 version = 0;\n"
            "  std::atomic<u64> hits{0};\n"
            "  u64 depth EXMA_GUARDED_BY(mtx_) = 0;\n"
            "  void touch() { ++version; }\n"
            "};\n"
            "}\n", path="src/io/format.hh")
        (rec,) = ir.records
        self.assertEqual(rec.qual, "exma::FileHeader")
        fields = {f.name: (f.type_spelling, f.array)
                  for f in rec.fields}
        self.assertEqual(fields["magic"], ("char", "[8]"))
        self.assertEqual(fields["version"], ("u32", ""))
        self.assertEqual(fields["hits"][0], "std::atomic<u64>")
        self.assertEqual(fields["depth"][0], "u64")
        self.assertNotIn("touch", fields)

    def test_function_with_trailing_macro_annotation(self):
        ir = parse(
            "class Mutex {\n"
            "  void lock() EXMA_ACQUIRE() { mtx_.lock(); }\n"
            "};\n")
        names = [f.name for f in ir.functions]
        self.assertEqual(names, ["lock"])

    def test_roundtrip(self):
        ir = parse(
            "struct S { int a; };\n"
            "void f() { MutexLock l(m_); g(); }\n")
        again = SourceIR.loads(ir.dumps())
        self.assertEqual(again.dumps(), ir.dumps())


class ClangLoweringTest(unittest.TestCase):

    @classmethod
    def setUpClass(cls):
        with open(os.path.join(HERE, "testdata",
                               "mini_ast.json")) as f:
            ast = json.load(f)
        cls.ir = clangjson.lower_tu("src/demo/demo.cc", ast, "/proj",
                                    version="18.1")

    def test_functions_and_out_of_line_class(self):
        by_qual = {f.qual: f for f in self.ir.functions}
        self.assertIn("exma::Worker::submit", by_qual)
        self.assertIn("exma::Worker::kill", by_qual)
        self.assertEqual(by_qual["exma::Worker::submit"].path,
                         "src/demo/demo.hh")
        # out-of-line definition: class recovered via
        # parentDeclContextId, file via differential location decoding
        self.assertEqual(by_qual["exma::Worker::kill"].cls, "Worker")
        self.assertEqual(by_qual["exma::Worker::kill"].path,
                         "src/demo/demo.cc")

    def test_differential_line_decoding(self):
        (rec,) = self.ir.records
        lines = {f.name for f in rec.fields}
        self.assertEqual(lines, {"mtx_", "history_"})
        arr = [f for f in rec.fields if f.name == "history_"][0]
        self.assertEqual(arr.array, "[4]")

    def test_lock_and_call_lowering_agrees_with_syntax(self):
        by_qual = {f.qual: f for f in self.ir.functions}
        submit = by_qual["exma::Worker::submit"]
        self.assertEqual([a.mutex for a in submit.acquires],
                         ["Worker::mtx_"])
        wait = [c for c in submit.calls if c.callee == "wait"][0]
        self.assertEqual(wait.receiver, "cv_")
        self.assertEqual(list(wait.locks), ["Worker::mtx_"])
        self.assertIn("lock", wait.args)

    def test_blocked_pass_on_lowered_ir(self):
        proj = project_from(self.ir)
        findings = pass_blocked.run(proj)
        # kill's fut_.get() under mtx_ fires; submit's cv wait with
        # its lock is the designed pattern and must not
        self.assertEqual(len(findings), 1)
        self.assertIn("get()", findings[0].message)
        self.assertEqual(findings[0].path, "src/demo/demo.cc")


class LockOrderPassTest(unittest.TestCase):

    CYCLE = (
        "class L {\n"
        "  void ab() { MutexLock x(a_); MutexLock y(b_); }\n"
        "  void ba() { MutexLock x(b_); MutexLock y(a_); }\n"
        "  Mutex a_;\n"
        "  Mutex b_;\n"
        "};\n")

    def test_cycle_detected_with_both_paths(self):
        proj = project_from(parse(self.CYCLE))
        (f,) = pass_lock_order.run(proj)
        self.assertIn("L::a_", f.message)
        self.assertIn("L::b_", f.message)
        self.assertIn("path 1:", f.message)
        self.assertIn("path 2:", f.message)

    def test_consistent_order_is_clean(self):
        proj = project_from(parse(
            "class L {\n"
            "  void ab() { MutexLock x(a_); MutexLock y(b_); }\n"
            "  void ab2() { MutexLock x(a_); MutexLock y(b_); }\n"
            "};\n"))
        self.assertEqual(pass_lock_order.run(proj), [])

    def test_inlined_edge_through_callee(self):
        proj = project_from(parse(
            "void A::outer() { MutexLock l(a_); helper(); }\n"
            "void A::helper() { MutexLock l(b_); inner(); }\n"
            "void A::other() { MutexLock l(b_); grab(); }\n"
            "void A::grab() { MutexLock l(a_); }\n"))
        (f,) = pass_lock_order.run(proj)
        self.assertIn("calls", f.message)

    def test_suppressed_cycle(self):
        # A cycle is reported unless EVERY edge on it carries an
        # allow comment — suppressing one side is not enough.
        allow = "  // analyze: allow(lock-order, test fixture)\n"
        half = self.CYCLE.replace(
            "  void ba()", allow + "  void ba()")
        proj = project_from(parse(half),
                            sources={"src/demo/demo.cc": half})
        self.assertEqual(len(pass_lock_order.run(proj)), 1)
        both = half.replace("  void ab()", allow + "  void ab()")
        proj = project_from(parse(both),
                            sources={"src/demo/demo.cc": both})
        self.assertEqual(pass_lock_order.run(proj), [])


class BlockedPassTest(unittest.TestCase):

    def run_on(self, body, sources=None):
        src = ("class W {\n  void f() {\n%s  }\n};\n" % body)
        proj = project_from(parse(src),
                            sources=sources and {
                                "src/demo/demo.cc": src})
        return pass_blocked.run(proj)

    def test_sleep_under_lock_fires(self):
        fs = self.run_on("    MutexLock l(mtx_);\n"
                         "    cancel_.sleepFor(50);\n")
        self.assertEqual(len(fs), 1)
        self.assertIn("sleepFor", fs[0].message)

    def test_cv_wait_with_lock_exempt(self):
        fs = self.run_on("    MutexLock l(mtx_);\n"
                         "    cv_.wait(l);\n")
        self.assertEqual(fs, [])

    def test_cv_wait_holding_second_lock_fires(self):
        fs = self.run_on("    MutexLock o(other_mtx_);\n"
                         "    MutexLock l(mtx_);\n"
                         "    cv_.wait(l);\n")
        self.assertEqual(len(fs), 1)
        self.assertIn("other lock", fs[0].message)

    def test_join_under_lock_fires(self):
        fs = self.run_on("    MutexLock l(mtx_);\n"
                         "    thread_.join();\n")
        self.assertEqual(len(fs), 1)

    def test_no_lock_no_finding(self):
        fs = self.run_on("    fut.get();\n")
        self.assertEqual(fs, [])

    def test_inlining_flags_blocking_callee(self):
        src = ("class W {\n"
               "  void f() { MutexLock l(mtx_); slowPath(); }\n"
               "  void slowPath() { fut_.wait_for(t); fut_.get(); }\n"
               "};\n")
        proj = project_from(parse(src))
        fs = pass_blocked.run(proj)
        self.assertTrue(any("slowPath" in f.message for f in fs))


class LayeringPassTest(unittest.TestCase):

    def make_proj(self, beta_deps, suppress=False):
        allow = ("// analyze: allow(layering, migration shim)\n"
                 if suppress else "")
        sources = {
            os.path.join("src", "alpha", "CMakeLists.txt"):
                "exma_add_module(alpha SOURCES a.cc DEPS exma::beta)",
            os.path.join("src", "beta", "CMakeLists.txt"):
                "exma_add_module(beta SOURCES b.cc%s)" % beta_deps,
            os.path.join("src", "beta", "b.hh"):
                allow + '#include "alpha/a.hh"\nint b;\n',
        }
        proj = Project("/nonexistent")
        for rel, text in sources.items():
            proj.add_source_text(
                rel, text, cxxparse.scan_suppressions(text))
        return proj

    def test_undeclared_edge_and_cycle(self):
        fs = pass_layering.run(self.make_proj(""))
        kinds = [f.message.split()[0] for f in fs]
        self.assertEqual(len(fs), 2)
        self.assertTrue(any("does not declare" in f.message
                            for f in fs))
        self.assertTrue(any("cycle" in f.message for f in fs))
        self.assertTrue(kinds)

    def test_declared_edge_still_cyclic(self):
        fs = pass_layering.run(self.make_proj(" DEPS exma::alpha"))
        self.assertEqual(len(fs), 1)
        self.assertIn("cycle", fs[0].message)

    def test_suppressed_include_edge(self):
        fs = pass_layering.run(self.make_proj("", suppress=True))
        self.assertEqual(len(fs), 1)  # cycle remains, edge suppressed
        self.assertIn("cycle", fs[0].message)

    def test_comment_deps_not_parsed(self):
        proj = Project("/nonexistent")
        proj.add_source_text(
            os.path.join("src", "gamma", "CMakeLists.txt"),
            "# prose about DEPS exma::io here\n"
            "exma_add_module(gamma SOURCES g.cc)\n", {})
        self.assertEqual(pass_layering.load_modules(proj),
                         {"gamma": set()})


class OndiskAbiHelpersTest(unittest.TestCase):

    def test_lock_render_parse_roundtrip(self):
        text = pass_ondisk_abi.render_lock(
            3, "type exma::X size 8 align 8\nfield a offset 0 size 8\n")
        version, payload = pass_ondisk_abi.parse_lock(text)
        self.assertEqual(version, 3)
        self.assertEqual(payload, ["type exma::X size 8 align 8",
                                   "field a offset 0 size 8"])

    def test_spelled_types_and_suppression(self):
        src = ("fb.writeArray<LeafEntry>(1, d);\n"
               "// analyze: allow(ondisk-abi, scratch-only)\n"
               "fb.writeArray<Scratch>(2, d);\n"
               "view.viewArray<u32>(3);\n")
        proj = Project("/nonexistent")
        proj.add_source_text("src/io/w.cc", src,
                             cxxparse.scan_suppressions(src))
        self.assertEqual(pass_ondisk_abi.spelled_types(proj),
                         ["LeafEntry", "u32"])

    def test_probe_covers_records_and_scalars(self):
        src = ("namespace exma {\n"
               "struct LeafEntry { u64 key; u32 flags; };\n"
               "}\n")
        proj = Project("/nonexistent")
        proj.add_source_text("src/io/format.hh", src, {})
        proj.add_ir(parse(src, path="src/io/format.hh"))
        recs, missing = pass_ondisk_abi.locked_records(
            proj, ["LeafEntry", "u32"])
        probe = pass_ondisk_abi.generate_probe(
            proj, ["LeafEntry", "u32"], recs)
        self.assertIn("offsetof(exma::LeafEntry, key)", probe)
        self.assertIn("sizeof(exma::u32)", probe)
        self.assertIn('#include "io/format.hh"', probe)
        self.assertIn("FileHeader", " ".join(missing))


class CompileDbTest(unittest.TestCase):

    def test_frontend_flags_extraction(self):
        e = compiledb.CompileEntry(
            "/r/src/a.cc", "/r/build",
            ["/usr/bin/c++", "-I/r/src", "-isystem", "/opt/inc",
             "-O3", "-DNDEBUG", "-std=c++20", "-o", "a.o", "-c",
             "/r/src/a.cc"])
        self.assertEqual(
            e.frontend_flags(),
            ["-I/r/src", "-isystem", "/opt/inc", "-DNDEBUG",
             "-std=c++20"])


if __name__ == "__main__":
    unittest.main()
