"""layering: the include DAG must match the declared module DAG.

Modules are the direct subdirectories of src/ that call
`exma_add_module(<name> ... DEPS exma::a exma::b ...)` in their
CMakeLists.txt. Two failure classes:

* undeclared edge — a file in src/A/ includes "B/..." but A's
  CMakeLists.txt does not declare `exma::B` in DEPS (the build only
  works through transitive link flags, and the dependency is invisible
  to anyone reading the module graph);
* cycle — the union of declared and actual edges contains a cycle, so
  the modules cannot be layered (and cannot be split across the
  planned process boundary).

Suppress a deliberate edge with `// analyze: allow(layering, reason)`
on the include line.
"""

import os
import re

from ir import Finding

PASS = "layering"

MODULE_RE = re.compile(r"exma_add_module\(\s*(\w+)", re.S)
DEPS_RE = re.compile(r"\bDEPS\b((?:\s+exma::\w+)+)", re.S)


def load_modules(proj):
    """{module: set(declared dep modules)} from src/*/CMakeLists.txt
    texts (pre-loaded into proj.sources by the driver)."""
    modules = {}
    for rel, text in proj.sources.items():
        if not rel.endswith("CMakeLists.txt"):
            continue
        parts = rel.split(os.sep)
        if len(parts) != 3 or parts[0] != "src":
            continue
        # strip "#" comments — a DEPS mentioned in prose must not
        # count as a declaration
        text = re.sub(r"#[^\n]*", "", text)
        m = MODULE_RE.search(text)
        if not m:
            continue
        name = m.group(1)
        deps = set()
        dm = DEPS_RE.search(text)
        if dm:
            deps = set(re.findall(r"exma::(\w+)", dm.group(1)))
        modules[name] = deps
    return modules


def module_of(rel):
    parts = rel.split(os.sep)
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return ""


def actual_edges(proj, modules):
    """{(src_mod, dst_mod): [(path, line)]} from include lines."""
    edges = {}
    inc_re = re.compile(r'^\s*#\s*include\s*"(\w+)/[^"]+"')
    for rel, text in proj.sources.items():
        src_mod = module_of(rel)
        if not src_mod or src_mod not in modules \
                or rel.endswith("CMakeLists.txt"):
            continue
        for i, line in enumerate(text.split("\n"), 1):
            m = inc_re.match(line)
            if not m:
                continue
            dst_mod = m.group(1)
            if dst_mod == src_mod or dst_mod not in modules:
                continue
            edges.setdefault((src_mod, dst_mod), []).append((rel, i))
    return edges


def _find_cycle(nodes, adj):
    """One cycle as a node list, or None (iterative DFS, 3-color)."""
    color = {n: 0 for n in nodes}
    parent = {}
    for start in sorted(nodes):
        if color[start]:
            continue
        stack = [(start, iter(sorted(adj.get(start, ()))))]
        color[start] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == 0:
                    color[nxt] = 1
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if color[nxt] == 1:
                    cyc = [nxt]
                    cur = node
                    while cur != nxt:
                        cyc.append(cur)
                        cur = parent[cur]
                    cyc.reverse()
                    return cyc
            if not advanced:
                color[node] = 2
                stack.pop()
        # continue with next start
    return None


def run(proj):
    modules = load_modules(proj)
    edges = actual_edges(proj, modules)
    findings = []
    for (src_mod, dst_mod), sites in sorted(edges.items()):
        if dst_mod in modules.get(src_mod, ()):
            continue
        sites = [s for s in sites
                 if not proj.suppressed(PASS, s[0], s[1])]
        if not sites:
            continue
        path, line = sites[0]
        where = ", ".join("%s:%d" % s for s in sites[:4])
        findings.append(Finding(
            path, line, PASS,
            "module '%s' includes \"%s/...\" (%s) but "
            "src/%s/CMakeLists.txt does not declare DEPS exma::%s"
            % (src_mod, dst_mod, where, src_mod, dst_mod)))
    # cycle check over declared ∪ actual
    adj = {m: set(d for d in deps if d in modules)
           for m, deps in modules.items()}
    for (s, d) in edges:
        adj.setdefault(s, set()).add(d)
    cyc = _find_cycle(set(modules), adj)
    if cyc is not None:
        loop = " -> ".join(cyc + [cyc[0]])
        findings.append(Finding(
            "src/%s/CMakeLists.txt" % cyc[0], 1, PASS,
            "module dependency cycle: %s — the module graph must stay "
            "a DAG (declared DEPS and include edges both count)" % loop))
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings
