"""Lower a clang `-ast-dump=json` translation unit to the analyzer IR.

Used by the CI frontend (frontends.py runs clang, this module lowers
the JSON). Two clang-JSON properties shape the code:

* Locations are differentially encoded — a node's `loc`/`range` omits
  `line` and `file` when unchanged from the previously printed
  location, so decoding is stateful and must follow document order.
  Macro expansions carry `spellingLoc`/`expansionLoc`; we follow the
  expansion side (where the code the analyzer reasons about lives).

* The dump covers every included header, so nodes are filtered to
  files under the project root *after* location decoding (skipping a
  subtree early would corrupt the differential state).

The lowering mirrors cxxparse.py's canonicalization so both frontends
agree on mutex names: a member mutex is "Class::member", a mutex
reached through a local reference is "OwnerType::member" (clang gives
us the owner type directly from the DeclRefExpr's qualType).
"""

import re

from ir import CallSite, FunctionIR, Field, LockAcq, RecordIR, SourceIR

FUNCTION_KINDS = {
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl",
}

_TYPE_BASE_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:<[^;]*>)?\s*[&*]*\s*$")


def type_base(qual_type):
    """Last class-ish identifier of a qualType spelling:
    "const exma::InjectorOwner &" -> "InjectorOwner"."""
    t = qual_type.split("<")[0]
    t = t.replace("const", " ").replace("volatile", " ")
    t = t.replace("&", " ").replace("*", " ")
    parts = [p for p in re.split(r"::|\s+", t) if p]
    return parts[-1] if parts else ""


class Lowering:
    def __init__(self, tu_path, root):
        self.tu_path = tu_path
        self.root = root.rstrip("/") + "/"
        self.cur_file = ""
        self.cur_line = 1
        self.functions = []
        self.records = []
        self.record_ids = {}     # node id -> class name (for out-of-line)
        self.ns_stack = []
        self.rec_stack = []

    # -- differential location decoding ---------------------------------

    def _decode_loc(self, loc):
        if not isinstance(loc, dict):
            return
        if "expansionLoc" in loc or "spellingLoc" in loc:
            # decode spelling first (document order), then expansion —
            # expansion wins as the effective position
            self._decode_loc(loc.get("spellingLoc"))
            self._decode_loc(loc.get("expansionLoc"))
            return
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]

    def _enter(self, node):
        """Decode this node's locations; return (file, line) in effect
        for the node itself."""
        self._decode_loc(node.get("loc"))
        rng = node.get("range")
        if isinstance(rng, dict):
            self._decode_loc(rng.get("begin"))
        file, line = self.cur_file, self.cur_line
        if isinstance(rng, dict):
            self._decode_loc(rng.get("end"))
        return file, line

    def _project_rel(self, file):
        if file.startswith(self.root):
            return file[len(self.root):]
        return ""

    # -- declaration walk ------------------------------------------------

    def run(self, tu_node):
        for child in tu_node.get("inner", ()):
            self._walk_decl(child)
        return self.functions, self.records

    def _walk_decl(self, node):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        file, line = self._enter(node)
        rel = self._project_rel(file)
        if kind == "NamespaceDecl":
            self.ns_stack.append(node.get("name", ""))
            for c in node.get("inner", ()):
                self._walk_decl(c)
            self.ns_stack.pop()
            return
        if kind == "CXXRecordDecl":
            name = node.get("name", "")
            if name and node.get("completeDefinition") and rel \
                    and not node.get("isImplicit"):
                chain = self.rec_stack + [name]
                rec = RecordIR(
                    "::".join(chain),
                    "::".join([n for n in self.ns_stack if n] + chain),
                    rel, line)
                self.records.append(rec)
                if "id" in node:
                    self.record_ids[node["id"]] = "::".join(chain)
                self.rec_stack.append(name)
                for c in node.get("inner", ()):
                    if c.get("kind") == "FieldDecl" \
                            and not c.get("isImplicit"):
                        f_file, f_line = self._enter(c)
                        qt = c.get("type", {}).get("qualType", "")
                        arr = ""
                        m = re.search(r"(\[[^\]]*\])+\s*$", qt)
                        if m:
                            arr = m.group(0).replace(" ", "")
                            qt = qt[:m.start()].strip()
                        rec.fields.append(
                            Field(c.get("name", ""), qt, arr))
                    else:
                        self._walk_decl(c)
                self.rec_stack.pop()
            else:
                # forward declarations / out-of-project records: still
                # walk children to keep location state exact
                for c in node.get("inner", ()):
                    self._walk_decl(c)
            return
        if kind in FUNCTION_KINDS and not node.get("isImplicit"):
            self._lower_function(node, rel, line)
            return
        for c in node.get("inner", ()):
            self._walk_decl(c)

    def _lower_function(self, node, rel, line):
        body = None
        for c in node.get("inner", ()):
            if c.get("kind") == "CompoundStmt":
                body = c
        name = node.get("name", "")
        cls = "::".join(self.rec_stack)
        if not cls and "parentDeclContextId" in node:
            cls = self.record_ids.get(node["parentDeclContextId"], "")
        if body is None or not name or not rel:
            # still decode the subtree for location state
            for c in node.get("inner", ()):
                self._walk_stmt_locs(c)
            return
        qual = "::".join([n for n in self.ns_stack if n]
                         + ([cls] if cls else []) + [name])
        fn = FunctionIR(name, qual, cls, rel, line)
        self.functions.append(fn)
        ctx = _BodyCtx(self, fn)
        for c in node.get("inner", ()):
            if c is body:
                ctx.walk_compound(body)
            else:
                self._walk_stmt_locs(c)

    def _walk_stmt_locs(self, node):
        if not isinstance(node, dict):
            return
        self._enter(node)
        for c in node.get("inner", ()):
            self._walk_stmt_locs(c)


class _BodyCtx:
    """Statement walk of one function body: tracks the RAII lock stack
    across nested CompoundStmts and emits LockAcq / CallSite."""

    def __init__(self, low, fn):
        self.low = low
        self.fn = fn
        self.locks = []  # [(canonical, var_name, depth)]
        self.depth = 0

    def walk_compound(self, node):
        self.depth += 1
        mark = len(self.locks)
        self.low._enter(node)
        for c in node.get("inner", ()):
            self.walk(c)
        del self.locks[mark:]
        self.depth -= 1

    def walk(self, node):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        file, line = self.low._enter(node)
        if kind == "CompoundStmt":
            self.walk_compound(node)
            return
        if kind == "DeclStmt":
            for c in node.get("inner", ()):
                if c.get("kind") == "VarDecl":
                    self._var_decl(c)
                else:
                    self.walk(c)
            return
        if kind in ("CXXMemberCallExpr", "CallExpr"):
            self._call(node, line)
            # fall through: walk arguments for nested calls
        for c in node.get("inner", ()):
            self.walk(c)

    def _held(self):
        return ([l[0] for l in self.locks], [l[1] for l in self.locks])

    def _var_decl(self, node):
        self.low._enter(node)
        qt = node.get("type", {}).get("qualType", "")
        name = node.get("name", "")
        if "MutexLock" in qt:
            canon = self._mutex_from_init(node)
            held, _ = self._held()
            self.fn.acquires.append(
                LockAcq(canon, self.low.cur_line, under=held))
            self.locks.append((canon, name, self.depth))
        for c in node.get("inner", ()):
            self.walk(c)

    def _mutex_from_init(self, node):
        """First member/decl reference in the initializer subtree,
        canonicalized."""
        found = self._find_ref(node)
        cls = self.fn.cls
        if found is None:
            return "%s::<unknown>" % (cls or self.fn.path)
        member, owner = found
        if owner:
            return "%s::%s" % (owner, member)
        return "%s::%s" % (cls if cls else self.fn.path, member)

    def _find_ref(self, node):
        """(member_name, owner_type_or_empty) for the first MemberExpr
        or mutex-typed DeclRefExpr in the subtree (document order)."""
        if not isinstance(node, dict):
            return None
        if node.get("kind") == "MemberExpr":
            member = node.get("name", "").lstrip("->").lstrip(".")
            owner = ""
            for c in node.get("inner", ()):
                base = self._base_ref(c)
                if base is not None:
                    owner = base
                    break
            return (member, owner)
        if node.get("kind") == "DeclRefExpr":
            rd = node.get("referencedDecl", {})
            qt = rd.get("type", {}).get("qualType", "")
            if "Mutex" in qt:
                return (rd.get("name", ""), "")
            return None
        for c in node.get("inner", ()):
            r = self._find_ref(c)
            if r is not None:
                return r
        return None

    def _base_ref(self, node):
        """Owner type for a MemberExpr base: "" for `this` (enclosing
        class applies), the DeclRefExpr's type base otherwise."""
        if not isinstance(node, dict):
            return None
        kind = node.get("kind")
        if kind == "CXXThisExpr":
            return ""
        if kind == "DeclRefExpr":
            rd = node.get("referencedDecl", {})
            base = type_base(rd.get("type", {}).get("qualType", ""))
            return base or None
        for c in node.get("inner", ()):
            r = self._base_ref(c)
            if r is not None:
                return r
        return None

    def _call(self, node, line):
        callee = ""
        qual = ""
        receiver = ""
        inner = node.get("inner", ())
        if not inner:
            return
        head = inner[0]
        if node["kind"] == "CXXMemberCallExpr":
            me = self._first_of(head, "MemberExpr")
            if me is None:
                return
            callee = me.get("name", "").lstrip("->").lstrip(".")
            base = self._first_of(me, "DeclRefExpr", "MemberExpr",
                                  skip=me)
            if base is not None:
                receiver = base.get("name", "") or \
                    base.get("referencedDecl", {}).get("name", "")
                receiver = receiver.lstrip("->").lstrip(".")
        else:
            dre = self._first_of(head, "DeclRefExpr")
            if dre is not None:
                rd = dre.get("referencedDecl", {})
                callee = rd.get("name", "")
        if not callee:
            return
        args = " ".join(self._ref_names(c) for c in inner[1:])[:200]
        held, lock_vars = self._held()
        self.fn.calls.append(CallSite(
            callee=callee, line=line, receiver=receiver,
            callee_qual=qual, args=args.strip(), locks=held,
            lock_vars=lock_vars))

    @staticmethod
    def _first_of(node, *kinds, skip=None):
        stack = [node]
        while stack:
            n = stack.pop(0)
            if not isinstance(n, dict):
                continue
            if n is not skip and n.get("kind") in kinds:
                return n
            stack.extend(n.get("inner", ()))
        return None

    def _ref_names(self, node):
        """All identifiers referenced in an argument subtree (for the
        cv-wait lock-variable exemption)."""
        out = []
        stack = [node]
        while stack:
            n = stack.pop(0)
            if not isinstance(n, dict):
                continue
            if n.get("kind") == "DeclRefExpr":
                nm = n.get("referencedDecl", {}).get("name", "")
                if nm:
                    out.append(nm)
            elif n.get("kind") == "MemberExpr":
                nm = n.get("name", "").lstrip("->").lstrip(".")
                if nm:
                    out.append(nm)
            stack.extend(n.get("inner", ()))
        return " ".join(out)


def lower_tu(tu_path, ast_json, root, suppressions=None, version=""):
    """SourceIR bundle for one TU dump. Functions/records keep their
    own (header) paths; `tu_path` names the bundle."""
    low = Lowering(tu_path, root)
    functions, records = low.run(ast_json)
    return SourceIR(tu_path, functions, records, suppressions or {},
                    frontend="clang %s" % version if version else "clang")
