"""Intermediate representation shared by every analyzer frontend.

Both frontends — the clang `-ast-dump=json` adapter and the pure-Python
syntactic parser (cxxparse.py) — lower a translation unit to this same
small IR, and every pass consumes only the IR. That keeps the passes
frontend-agnostic: CI runs them off real clang ASTs, a clang-less
machine runs them off the syntactic frontend, and the results agree
because the IR is the contract (unit tests in test_exma_analyze.py pin
both lowerings).

The IR is deliberately coarse. It models exactly what the four passes
need — RAII lock acquisitions with their scopes, call sites with the
locks held around them, record layouts, include edges — and nothing
else. Facts a pass cannot prove from this IR (e.g. a destructor run by
a shared_ptr reassignment) are out of scope and documented per pass.
"""

import json


class LockAcq:
    """One lock acquisition inside a function body.

    `mutex` is the canonical capability name ("Class::member_" when the
    expression resolves to a member, else "file-local:expr"); `under`
    are the canonical names already held at the acquisition point,
    outermost first.
    """

    def __init__(self, mutex, line, under=()):
        self.mutex = mutex
        self.line = line
        self.under = tuple(under)

    def to_dict(self):
        return {"mutex": self.mutex, "line": self.line,
                "under": list(self.under)}

    @staticmethod
    def from_dict(d):
        return LockAcq(d["mutex"], d["line"], d["under"])


class CallSite:
    """One call expression inside a function body.

    `callee` is the unqualified name actually dispatched ("kill" for
    `w->kill()`), `callee_qual` any explicit qualification spelled at
    the call ("ShardWorker::kill", "" when unqualified), `receiver` the
    immediate receiver's base identifier ("w" for `w->kill()`,
    "fut" for `at.fut.get()`, "" for free calls), `args` the raw
    argument text (for the condition-variable wait exemption), and
    `locks` / `lock_vars` the canonical mutex names and the local
    MutexLock variable names held around the call, outermost first.
    """

    def __init__(self, callee, line, receiver="", callee_qual="", args="",
                 locks=(), lock_vars=()):
        self.callee = callee
        self.line = line
        self.receiver = receiver
        self.callee_qual = callee_qual
        self.args = args
        self.locks = tuple(locks)
        self.lock_vars = tuple(lock_vars)

    def to_dict(self):
        return {"callee": self.callee, "line": self.line,
                "receiver": self.receiver,
                "callee_qual": self.callee_qual, "args": self.args,
                "locks": list(self.locks),
                "lock_vars": list(self.lock_vars)}

    @staticmethod
    def from_dict(d):
        return CallSite(d["callee"], d["line"], d["receiver"],
                        d["callee_qual"], d["args"], d["locks"],
                        d["lock_vars"])


class FunctionIR:
    """One function definition: where it lives and what it does."""

    def __init__(self, name, qual, cls, path, line, acquires=None,
                 calls=None):
        self.name = name        # "kill"
        self.qual = qual        # "exma::ShardWorker::kill"
        self.cls = cls          # "ShardWorker" ("" for free functions)
        self.path = path        # repo-relative source path
        self.line = line
        self.acquires = list(acquires or [])
        self.calls = list(calls or [])

    def to_dict(self):
        return {"name": self.name, "qual": self.qual, "cls": self.cls,
                "path": self.path, "line": self.line,
                "acquires": [a.to_dict() for a in self.acquires],
                "calls": [c.to_dict() for c in self.calls]}

    @staticmethod
    def from_dict(d):
        return FunctionIR(
            d["name"], d["qual"], d["cls"], d["path"], d["line"],
            [LockAcq.from_dict(a) for a in d["acquires"]],
            [CallSite.from_dict(c) for c in d["calls"]])


class Field:
    """One non-static data member: name, type spelling, array extent
    text ("" for scalars, "[8]" for `char magic[8]`)."""

    def __init__(self, name, type_spelling, array=""):
        self.name = name
        self.type_spelling = type_spelling
        self.array = array

    def to_dict(self):
        return {"name": self.name, "type": self.type_spelling,
                "array": self.array}

    @staticmethod
    def from_dict(d):
        return Field(d["name"], d["type"], d["array"])


class RecordIR:
    """One struct/class definition with its data members in
    declaration order (the property the ondisk-abi pass freezes)."""

    def __init__(self, name, qual, path, line, fields=None):
        self.name = name    # "Block" (or "PackedRank::Block" nested)
        self.qual = qual    # "exma::PackedRank::Block"
        self.path = path
        self.line = line
        self.fields = list(fields or [])

    def to_dict(self):
        return {"name": self.name, "qual": self.qual, "path": self.path,
                "line": self.line,
                "fields": [f.to_dict() for f in self.fields]}

    @staticmethod
    def from_dict(d):
        return RecordIR(d["name"], d["qual"], d["path"], d["line"],
                        [Field.from_dict(f) for f in d["fields"]])


class SourceIR:
    """Everything extracted from one source file (or one TU)."""

    def __init__(self, path, functions=None, records=None,
                 suppressions=None, frontend=""):
        self.path = path
        self.functions = list(functions or [])
        self.records = list(records or [])
        # line -> [(pass_name, reason)] from `// analyze: allow(...)`
        self.suppressions = dict(suppressions or {})
        self.frontend = frontend  # "syntax" | "clang <version>"

    def suppressed(self, pass_name, line):
        """A finding is suppressed by an allow() on its own line or the
        line directly above (the conventional comment position)."""
        for probe in (line, line - 1):
            for name, _reason in self.suppressions.get(probe, ()):
                if name == pass_name:
                    return True
        return False

    def to_dict(self):
        return {"path": self.path, "frontend": self.frontend,
                "functions": [f.to_dict() for f in self.functions],
                "records": [r.to_dict() for r in self.records],
                "suppressions": {str(k): v for k, v in
                                 self.suppressions.items()}}

    @staticmethod
    def from_dict(d):
        return SourceIR(
            d["path"],
            [FunctionIR.from_dict(f) for f in d["functions"]],
            [RecordIR.from_dict(r) for r in d["records"]],
            {int(k): [tuple(x) for x in v]
             for k, v in d["suppressions"].items()},
            d.get("frontend", ""))

    def dumps(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def loads(s):
        return SourceIR.from_dict(json.loads(s))


class Finding:
    """One analyzer diagnostic, formatted like a compiler's."""

    def __init__(self, path, line, pass_name, message):
        self.path = path
        self.line = line
        self.pass_name = pass_name
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.pass_name,
                                   self.message)

    def to_dict(self):
        return {"path": self.path, "line": self.line,
                "pass": self.pass_name, "message": self.message}
