"""ondisk-abi: every serialized type's layout is frozen in a lock file.

PR 7's static_asserts pin sizeof per POD; this pass upgrades that to
an offset-exact golden file. It collects every type spelled at a
`writeArray<T>` / `viewArray<T>` call site — and, for the wire frames
the transport layer sends between router and worker processes, at
`putPod<T>` / `getPod<T>` sites — plus FileHeader / SectionEntry and
records embedded in locked records, generates a
probe program printing `sizeof` / `alignof` / `offsetof` for each with
the *project's own compiler and flags*, and compares the output to the
committed `src/io/format_abi.lock`:

* layouts equal, version equal        -> clean;
* layouts differ, version unchanged   -> FAIL: the on-disk format
  changed silently — bump kFormatVersion, then regenerate;
* version bumped (or lock missing)    -> FAIL: regenerate with
  `exma_analyze.py --pass ondisk-abi --update`.

A compile probe (rather than AST-side offset math) is deliberate: the
numbers come from the compiler that builds the project, so padding,
alignas and ABI quirks are exact by construction, with any frontend.
"""

import difflib
import os
import re
import subprocess
import tempfile

import compiledb
from ir import Finding

PASS = "ondisk-abi"

SPELL_RE = re.compile(
    r"(?:writeArray|viewArray|putPod|getPod)\s*<\s*([\w:]+)\s*>")
VERSION_RE = re.compile(r"kFormatVersion\s*=\s*(\d+)")

# FrameHeader is written/read with raw writeFully/readFully rather
# than a spelled putPod site, so it is pinned here: router and worker
# are separate binaries and the frame preamble is their ABI.
ALWAYS_LOCKED = ("FileHeader", "SectionEntry", "FrameHeader")
SCALARS = {"u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"}

LOCK_REL = os.path.join("src", "io", "format_abi.lock")
FORMAT_HH_REL = os.path.join("src", "io", "format.hh")


def spelled_types(proj):
    """Type spellings at serialization call sites, sorted; suppressed
    lines (`// analyze: allow(ondisk-abi, ...)`) are excluded."""
    out = set()
    for rel, text in sorted(proj.sources.items()):
        if rel.endswith("CMakeLists.txt"):
            continue
        for i, line in enumerate(text.split("\n"), 1):
            for m in SPELL_RE.finditer(line):
                if not proj.suppressed(PASS, rel, i):
                    out.add(m.group(1))
    return sorted(out)


def locked_records(proj, spelled):
    """RecordIRs to freeze: spelled records, the always-locked header
    structs, and records embedded as fields of locked records."""
    work = list(spelled) + list(ALWAYS_LOCKED)
    seen = {}
    while work:
        name = work.pop(0)
        if name in SCALARS or name in seen:
            continue
        rec = proj.record_by_name(name)
        if rec is None or rec.qual in {r.qual for r in seen.values()}:
            seen[name] = rec
            continue
        seen[name] = rec
        for f in rec.fields:
            base = f.type_spelling.split("<")[0].split("::")[-1].strip()
            if base and base not in seen and proj.record_by_name(base):
                work.append(base)
    recs = [r for r in seen.values() if r is not None]
    recs.sort(key=lambda r: r.qual)
    missing = [n for n, r in sorted(seen.items())
               if r is None and n not in SCALARS]
    return recs, missing


def generate_probe(proj, spelled, records):
    includes = {"common/types.hh"}
    for r in records:
        p = r.path
        if p.startswith("src" + os.sep):
            p = p[len("src" + os.sep):]
        includes.add(p.replace(os.sep, "/"))
    lines = ["#include <cstddef>", "#include <cstdio>"]
    lines += ['#include "%s"' % p for p in sorted(includes)]
    lines += ["", "int main() {"]
    for s in sorted(set(spelled) & SCALARS):
        lines.append(
            '    std::printf("type exma::%s size %%zu align %%zu\\n", '
            "sizeof(exma::%s), alignof(exma::%s));" % (s, s, s))
    for r in records:
        q = r.qual
        lines.append(
            '    std::printf("type %s size %%zu align %%zu\\n", '
            "sizeof(%s), alignof(%s));" % (q, q, q))
        for f in r.fields:
            lines.append(
                '    std::printf("field %s offset %%zu size %%zu\\n", '
                "offsetof(%s, %s), sizeof(%s::%s));"
                % (f.name, q, f.name, q, f.name))
    lines += ["    return 0;", "}", ""]
    return "\n".join(lines)


def compile_and_run_probe(probe_src, root, build_dir):
    flags = compiledb.default_flags(root)
    if build_dir:
        try:
            entries = compiledb.load(build_dir)
            by_file = compiledb.index_by_file(entries)
            io_tus = [p for p in by_file
                      if os.sep + "io" + os.sep in p]
            if io_tus:
                flags = by_file[sorted(io_tus)[0]].frontend_flags()
        except FileNotFoundError:
            pass
    cxx = os.environ.get("CXX", "c++")
    with tempfile.TemporaryDirectory(prefix="exma-abi-") as tmp:
        src = os.path.join(tmp, "abi_probe.cc")
        binary = os.path.join(tmp, "abi_probe")
        with open(src, "w", encoding="utf-8") as f:
            f.write(probe_src)
        cc = subprocess.run([cxx] + flags + ["-o", binary, src],
                            capture_output=True, text=True)
        if cc.returncode != 0:
            raise RuntimeError("ABI probe failed to compile:\n%s"
                               % cc.stderr.strip()[:2000])
        run = subprocess.run([binary], capture_output=True, text=True)
        if run.returncode != 0:
            raise RuntimeError("ABI probe failed to run (exit %d)"
                               % run.returncode)
        return run.stdout


def current_format_version(root):
    path = os.path.join(root, FORMAT_HH_REL)
    try:
        with open(path, encoding="utf-8") as f:
            m = VERSION_RE.search(f.read())
    except OSError:
        return None
    return int(m.group(1)) if m else None


def render_lock(version, probe_out):
    head = [
        "# exma on-disk ABI lock — layouts of every serialized type,",
        "# as measured by the project compiler. Regenerate after a",
        "# deliberate format change (kFormatVersion bump) with:",
        "#   python3 tools/analyze/exma_analyze.py --pass ondisk-abi"
        " --update",
        "format_version %d" % version,
    ]
    return "\n".join(head) + "\n" + probe_out


def parse_lock(text):
    """(version_or_None, payload_lines) — payload excludes comments
    and the version line."""
    version = None
    payload = []
    for line in text.split("\n"):
        line = line.rstrip()
        if not line or line.startswith("#"):
            continue
        m = re.match(r"format_version\s+(\d+)$", line)
        if m:
            version = int(m.group(1))
            continue
        payload.append(line)
    return version, payload


def run(proj, update=False, build_dir=None):
    root = proj.root
    findings = []
    version = current_format_version(root)
    if version is None:
        return [Finding(FORMAT_HH_REL, 1, PASS,
                        "cannot read kFormatVersion from %s"
                        % FORMAT_HH_REL)]
    spelled = spelled_types(proj)
    records, missing = locked_records(proj, spelled)
    for name in missing:
        findings.append(Finding(
            LOCK_REL, 1, PASS,
            "serialized type %r has no visible definition in the "
            "analyzed sources — the analyzer cannot freeze its "
            "layout" % name))
    probe = generate_probe(proj, spelled, records)
    try:
        out = compile_and_run_probe(probe, root, build_dir)
    except RuntimeError as e:
        findings.append(Finding(LOCK_REL, 1, PASS, str(e)))
        return findings
    lock_path = os.path.join(root, LOCK_REL)
    if update:
        with open(lock_path, "w", encoding="utf-8") as f:
            f.write(render_lock(version, out))
        return findings
    try:
        with open(lock_path, encoding="utf-8") as f:
            lock_version, lock_payload = parse_lock(f.read())
    except OSError:
        findings.append(Finding(
            LOCK_REL, 1, PASS,
            "%s is missing — generate it with --pass ondisk-abi "
            "--update and commit it" % LOCK_REL))
        return findings
    _, cur_payload = parse_lock(render_lock(version, out))
    if lock_version != version:
        findings.append(Finding(
            LOCK_REL, 1, PASS,
            "lock file records format_version %s but %s declares %d "
            "— regenerate the lock (--pass ondisk-abi --update) as "
            "part of the version bump" % (lock_version, FORMAT_HH_REL,
                                          version)))
        return findings
    if lock_payload != cur_payload:
        diff = list(difflib.unified_diff(
            lock_payload, cur_payload, fromfile="format_abi.lock",
            tofile="measured", lineterm="", n=1))
        findings.append(Finding(
            LOCK_REL, 1, PASS,
            "on-disk layout changed without a kFormatVersion bump "
            "(still %d). Readers of existing index files will "
            "misinterpret them. Bump kFormatVersion in %s, then "
            "regenerate the lock with --pass ondisk-abi --update.\n%s"
            % (version, FORMAT_HH_REL, "\n".join(diff[:40]))))
    return findings
