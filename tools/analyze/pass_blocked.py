"""blocked-under-lock: no blocking operation inside a critical section.

Flags, at any call site where at least one `exma::Mutex` is held:

* future waits — `get`/`wait`/`wait_for`/`wait_until` on a future-
  shaped receiver (name contains "fut"), and `.join()`;
* sleeps — `sleep_for`/`sleep_until`/`sleepFor`;
* condition waits holding an *extra* lock — `wait*(lock)` with the
  waited lock in the argument list is the designed cv pattern and is
  exempt, unless a second mutex is also held (that one stays locked
  for the whole wait);
* file / mapping syscalls — open/fopen/read/write/mmap and friends
  (this is how src/io bodies register, without claiming every
  project function that shares a name with an io accessor);
* worker dispatch — a resolved call to `process()`/`serve()` defined
  in src/route (a whole query batch runs inside the section);
* one level of inlining — calls to project functions whose own bodies
  contain any of the above (a cv wait on the callee's own lock still
  blocks the caller's lock, so it counts).

src/common/thread_annotations.hh is exempt wholesale: it defines the
locking/waiting primitives themselves. Suppress a deliberate site with
`// analyze: allow(blocked-under-lock, reason)`.
"""

import re

from ir import Finding

PASS = "blocked-under-lock"

EXEMPT_PATHS = ("common/thread_annotations.hh",)

WAIT_CALLEES = {"wait", "wait_for", "wait_until"}
SLEEP_CALLEES = {"sleep_for", "sleep_until", "sleepFor"}
SYSCALL_CALLEES = {"open", "fopen", "fread", "fwrite", "pread",
                   "pwrite", "mmap", "munmap", "fsync", "msync"}
FUT_RECV_RE = re.compile(r"fut", re.I)


def _args_tokens(call):
    return set(re.findall(r"[A-Za-z_]\w*", call.args))


def _blocking_reason(call, proj, inline=True):
    """Why this call blocks, or None. `inline=False` when classifying
    a callee body (one level only — no transitive chase)."""
    c = call.callee
    if c in WAIT_CALLEES:
        toks = _args_tokens(call)
        waited_locks = [v for v in call.lock_vars if v in toks]
        if waited_locks:
            # cv wait with its own lock: exempt unless an extra mutex
            # stays held across the wait
            if len(call.locks) > len(waited_locks):
                return ("condition wait on %r holds %d other lock(s) "
                        "for the whole wait" % (c, len(call.locks)
                                                - len(waited_locks)))
            return None
        if FUT_RECV_RE.search(call.receiver or ""):
            return "future %s() blocks" % c
        if call.receiver:
            return "%s() on %r may block" % (c, call.receiver)
        return None
    if c == "get" and FUT_RECV_RE.search(call.receiver or ""):
        return "future get() blocks"
    if c == "join":
        return "join() blocks until the thread exits"
    if c in SLEEP_CALLEES:
        return "%s() sleeps" % c
    if c in SYSCALL_CALLEES:
        return "file/mapping operation %s() blocks on I/O" % c
    if inline:
        for callee in proj.resolve_call(call):
            if c in ("process", "serve") and "route" in \
                    callee.path.split("/"):
                return ("worker dispatch %s() (%s, %s:%d) runs a "
                        "whole batch" % (c, callee.qual, callee.path,
                                         callee.line))
            if any(callee.path.endswith(p) for p in EXEMPT_PATHS):
                continue
            for inner in callee.calls:
                why = _blocking_reason(inner, proj, inline=False)
                if why:
                    return ("%s (%s:%d) blocks: %s"
                            % (callee.qual, callee.path, inner.line,
                               why))
    return None


def run(proj):
    findings = []
    for fn in proj.functions:
        if any(fn.path.endswith(p) for p in EXEMPT_PATHS):
            continue
        for call in fn.calls:
            if not call.locks:
                continue
            why = _blocking_reason(call, proj)
            if why is None:
                continue
            if proj.suppressed(PASS, fn.path, call.line):
                continue
            findings.append(Finding(
                fn.path, call.line, PASS,
                "%s holds %s at a blocking call: %s"
                % (fn.qual, ", ".join(call.locks), why)))
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings
