"""Merged whole-project view the passes consume.

A Project is the union of every per-file/per-TU SourceIR plus the raw
source texts (the layering and ondisk-abi passes scan text for
includes and writeArray<T> spellings — properties the AST-level IR
does not need to carry). Function resolution here is what gives the
lock-order and blocked-under-lock passes their "one level of
inlining": a call site resolves to project function definitions by
explicit qualification when spelled, else by name (conservatively —
all same-named definitions)."""

import os
import re

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


class Project:
    def __init__(self, root):
        self.root = root
        self.sources = {}       # rel path -> text
        self.functions = []
        self.records = []
        self.suppressions = {}  # rel path -> {line: [(pass, reason)]}
        self._by_name = None
        self._by_qual_tail = None

    # -- construction ----------------------------------------------------

    def add_source_text(self, rel, text, suppressions):
        self.sources[rel] = text
        self.suppressions[rel] = suppressions

    def add_ir(self, ir):
        seen_fn = {(f.qual, f.path, f.line) for f in self.functions}
        for f in ir.functions:
            if (f.qual, f.path, f.line) not in seen_fn:
                self.functions.append(f)
        seen_rec = {(r.qual, r.path) for r in self.records}
        for r in ir.records:
            if (r.qual, r.path) not in seen_rec:
                self.records.append(r)
        self._by_name = None
        self._by_qual_tail = None

    # -- queries ---------------------------------------------------------

    def suppressed(self, pass_name, path, line):
        per_file = self.suppressions.get(path, {})
        for probe in (line, line - 1):
            for name, _reason in per_file.get(probe, ()):
                if name == pass_name:
                    return True
        return False

    def _build_indexes(self):
        self._by_name = {}
        self._by_qual_tail = {}
        for f in self.functions:
            self._by_name.setdefault(f.name, []).append(f)
            parts = f.qual.split("::")
            for i in range(len(parts)):
                tail = "::".join(parts[i:])
                self._by_qual_tail.setdefault(tail, []).append(f)

    def resolve_call(self, call):
        """Project function definitions a call site may dispatch to.
        Qualified spellings match by qualified-name tail; unqualified
        ones by bare name (every same-named definition — conservative
        by design, suppressible per site)."""
        if self._by_name is None:
            self._build_indexes()
        if call.callee_qual:
            return list(self._by_qual_tail.get(call.callee_qual, ()))
        return list(self._by_name.get(call.callee, ()))

    def record_by_name(self, spelled):
        """RecordIR whose name matches a spelled type ("ClampedLeaf",
        "PackedRank::Block"), preferring exact name matches."""
        if self._by_name is None:
            self._build_indexes()
        exact = [r for r in self.records if r.name == spelled]
        if exact:
            return exact[0]
        tail = [r for r in self.records
                if r.qual.endswith("::" + spelled)]
        return tail[0] if tail else None

    def includes_of(self, rel):
        return INCLUDE_RE.findall(self.sources.get(rel, ""))


def iter_source_files(root, subdirs=("src",), exts=(".hh", ".cc")):
    """Repo-relative paths of project sources, sorted."""
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in exts:
                    out.append(os.path.relpath(
                        os.path.join(dirpath, fn), root))
    return out
