"""compile_commands.json loading and flag extraction.

The analyzer needs two things from the compilation database: the list
of project translation units, and per-TU flags (include dirs, -std,
defines) so the clang frontend and the ondisk-abi compile probe see
exactly what the build sees. When no database exists (e.g. analyzing a
fixture mini-root that is never built), callers fall back to
`default_flags(root)`.
"""

import json
import os
import shlex


class CompileEntry:
    __slots__ = ("file", "directory", "args")

    def __init__(self, file, directory, args):
        self.file = file
        self.directory = directory
        self.args = args  # full argv including the compiler

    def frontend_flags(self):
        """Flags safe to replay against a different compiler for a
        syntax-only run: includes, defines, standard."""
        out = []
        args = self.args
        i = 1
        while i < len(args):
            a = args[i]
            if a in ("-I", "-isystem", "-D", "-U", "-include"):
                if i + 1 < len(args):
                    out.extend([a, args[i + 1]])
                i += 2
                continue
            if a.startswith(("-I", "-D", "-U", "-std=")) or \
                    a.startswith("-isystem"):
                out.append(a)
            i += 1
        return out


def load(build_dir):
    """Project TUs from <build_dir>/compile_commands.json, sorted by
    path; raises FileNotFoundError when absent."""
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path, encoding="utf-8") as f:
        raw = json.load(f)
    entries = []
    for e in raw:
        if "arguments" in e:
            args = list(e["arguments"])
        else:
            args = shlex.split(e["command"])
        file = e["file"]
        if not os.path.isabs(file):
            file = os.path.normpath(os.path.join(e["directory"], file))
        entries.append(CompileEntry(file, e["directory"], args))
    entries.sort(key=lambda e: e.file)
    return entries


def default_flags(root):
    """Fallback flags when no compilation database exists: the
    project's public include root and language standard."""
    return ["-I" + os.path.join(root, "src"), "-std=c++20"]


def flags_for(entries_by_file, path, root):
    e = entries_by_file.get(os.path.abspath(path))
    if e is not None:
        return e.frontend_flags()
    return default_flags(root)


def index_by_file(entries):
    return {os.path.abspath(e.file): e for e in entries}
