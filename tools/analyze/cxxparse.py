"""Syntactic C++ frontend: lowers a source file to the analyzer IR.

This is the fallback frontend for machines without clang (the clang
`-ast-dump=json` adapter in frontends.py is preferred when available)
and the reference implementation the unit tests pin. It is not a C++
parser; it is a scope-tracking token walker tuned to this codebase's
conventions (clang-format'd, no raw string literals with embedded
quotes, RAII locking via exma::MutexLock). The IR it produces is
deliberately coarse — see ir.py for what the passes actually consume.

Known, documented blind spots (shared with any syntactic approach):
destructors run via smart-pointer reassignment, calls made from
initializer lists, and overload resolution (a call is matched to
project functions by name, conservatively).
"""

import re

from ir import CallSite, Field, FunctionIR, LockAcq, RecordIR, SourceIR

# ---------------------------------------------------------------------------
# Comment / string stripping and suppression scanning
# ---------------------------------------------------------------------------

SUPPRESS_RE = re.compile(
    r"(?://|/\*)\s*analyze:\s*allow\(\s*([\w-]+)\s*(?:,\s*([^)]*?)\s*)?\)")


def scan_suppressions(text):
    """Map line -> [(pass_name, reason)] from `// analyze: allow(pass,
    reason)` comments, scanned before stripping."""
    out = {}
    for i, line in enumerate(text.split("\n"), 1):
        for m in SUPPRESS_RE.finditer(line):
            out.setdefault(i, []).append(
                (m.group(1), (m.group(2) or "").strip()))
    return out


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving
    newlines so line numbers survive."""
    out = []
    i = 0
    n = len(text)
    mode = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode, i = "line_comment", i + 2
                out.append("  ")
            elif c == "/" and nxt == "*":
                mode, i = "block_comment", i + 2
                out.append("  ")
            elif c == '"':
                mode, i = "string", i + 1
                out.append(" ")
            elif c == "'":
                mode, i = "char", i + 1
                out.append(" ")
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            out.append(c if c == "\n" else " ")
            if c == "\n":
                mode = "code"
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode, i = "code", i + 2
                out.append("  ")
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string / char
            if c == "\\":
                out.append("  ")
                i += 2
            elif (mode == "string" and c == '"') or \
                    (mode == "char" and c == "'"):
                mode, i = "code", i + 1
                out.append(" ")
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"          # identifiers / keywords
    r"|\d[\w.]*"             # numbers (incl. 0x..., 1'000 loses the ')
    r"|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^!~<>=?:;,.(){}\[\]#\\]",
)


class Tok:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return "Tok(%r,%d)" % (self.text, self.line)


def tokenize(stripped):
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


def is_ident(t):
    return bool(t) and (t[0].isalpha() or t[0] == "_")


# Preprocessor lines are dropped before parsing (includes are handled
# by the layering pass directly on the raw text).
def drop_preprocessor(toks):
    out = []
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "#":
            line = toks[i].line
            while i < n and toks[i].line == line and toks[i].text != "\\":
                i += 1
            # line continuations: a trailing backslash extends the
            # directive to the next line
            while i < n and toks[i].text == "\\":
                line += 1
                while i < n and toks[i].line <= line:
                    i += 1
        else:
            out.append(toks[i])
            i += 1
    return out


# ---------------------------------------------------------------------------
# Scope-tracking parser
# ---------------------------------------------------------------------------

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "alignas", "static_assert", "decltype", "noexcept",
    "throw", "new", "delete", "case", "assert", "offsetof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "co_await", "co_return", "typeid", "operator", "requires",
}

FN_TRAILING = {"const", "noexcept", "override", "final", "try",
               "mutable", "&", "&&", "=", "0", "default", "delete"}

MACRO_NAME_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


class _Scope:
    __slots__ = ("kind", "name", "func", "locks", "stash")

    def __init__(self, kind, name="", func=None):
        self.kind = kind    # namespace | record | function | block | other
        self.name = name
        self.func = func    # FunctionIR for function scopes
        self.locks = []     # [(canonical, var_name)] acquired here
        self.stash = []     # record scope: tokens of a pending member


def _top_level_groups(texts):
    """Indices (open, close) of top-level (...) groups; -1 close when
    unbalanced."""
    groups = []
    depth = 0
    start = -1
    for i, t in enumerate(texts):
        if t == "(":
            if depth == 0:
                start = i
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                groups.append((start, i))
            elif depth < 0:
                depth = 0
    return groups


def _parse_function_signature(seg):
    """Return (name, qual_parts) if the segment preceding a `{` looks
    like a function definition header, else None."""
    texts = [t.text for t in seg]
    if not texts or texts[-1] in ("=", ","):
        return None
    groups = _top_level_groups(texts)
    if not groups:
        return None
    # Constructor initializer list: a top-level ':' after the first
    # top-level ')' cuts the signature.
    first_close = groups[0][1]
    cut = len(texts)
    depth = 0
    for i in range(first_close + 1, len(texts)):
        t = texts[i]
        if t in ("(", "[", "<"):
            depth += 1
        elif t in (")", "]", ">"):
            depth -= 1
        elif t == ":" and depth <= 0:
            cut = i
            break
    texts = texts[:cut]
    groups = [g for g in groups if g[1] < cut]
    if not groups:
        return None
    # Trailing-return functions: everything after '->' is the type.
    arrow = None
    for i, t in enumerate(texts):
        if t == "->" and any(g[1] < i for g in groups):
            arrow = i
            break
    if arrow is not None:
        texts = texts[:arrow]
        groups = [g for g in groups if g[1] < arrow]
        if not groups:
            return None
    # The parameter list is the last top-level group whose trailing
    # tokens are all function-suffix tokens; macro annotation groups
    # (EXMA_ACQUIRE(...) etc.) are stepped over.
    gi = len(groups) - 1
    while gi >= 0:
        op, cl = groups[gi]
        trailing = [t for t in texts[cl + 1:]
                    if not MACRO_NAME_RE.match(t)]
        # strip tokens belonging to later (macro) groups
        trailing = []
        j = cl + 1
        while j < len(texts):
            t = texts[j]
            if t == "(":
                d = 1
                j += 1
                while j < len(texts) and d:
                    if texts[j] == "(":
                        d += 1
                    elif texts[j] == ")":
                        d -= 1
                    j += 1
                continue
            trailing.append(t)
            j += 1
        bad = [t for t in trailing
               if t not in FN_TRAILING and not MACRO_NAME_RE.match(t)]
        if bad:
            return None
        name_i = op - 1
        if name_i < 0:
            return None
        name = texts[name_i]
        if MACRO_NAME_RE.match(name) and gi > 0:
            gi -= 1
            continue
        break
    else:
        return None
    if name == "operator" or not is_ident(name):
        # operator overloads and conversion operators: name them
        # "operator" collectively; passes never resolve them.
        if name in ("operator", ")", ">", "]"):
            return ("operator", [])
        return None
    if name in CONTROL_KEYWORDS:
        return None
    # Preceding qualification: Class :: name (possibly chained), with
    # destructors spelled Class :: ~ Class.
    qual = []
    i = name_i - 1
    if i >= 0 and texts[i] == "~":
        name = "~" + name
        i -= 1
    while i - 1 >= 0 and texts[i] == "::" and is_ident(texts[i - 1]):
        qual.insert(0, texts[i - 1])
        i -= 2
        # skip template argument lists in qualifiers (Foo<T>::bar)
    return (name, qual)


def _record_name_from_segment(texts):
    cut = len(texts)
    depth = 0
    for i, t in enumerate(texts):
        if t in ("(", "[", "<", "{"):
            depth += 1
        elif t in (")", "]", ">", "}"):
            depth -= 1
        elif t == ":" and depth <= 0 and \
                (i + 1 >= len(texts) or texts[i + 1] != ":") and \
                (i == 0 or texts[i - 1] != ":"):
            cut = i
            break
    texts = texts[:cut]
    if texts and texts[-1] == "final":
        texts = texts[:-1]
    for t in reversed(texts):
        if is_ident(t) and t not in ("class", "struct", "union", "final"):
            return t
    return ""


class Parser:
    """One file -> SourceIR. See module docstring for scope."""

    def __init__(self, path, text):
        self.path = path
        self.suppressions = scan_suppressions(text)
        stripped = strip_comments_and_strings(text)
        self.toks = drop_preprocessor(tokenize(stripped))
        self.functions = []
        self.records = []
        self.stack = []

    # -- scope helpers ---------------------------------------------------

    def _namespaces(self):
        return [s.name for s in self.stack
                if s.kind == "namespace" and s.name]

    def _record_chain(self):
        return [s.name for s in self.stack if s.kind == "record"]

    def _current_function(self):
        for s in reversed(self.stack):
            if s.kind == "function":
                return s.func
        return None

    def _held(self):
        """Canonical mutex names and MutexLock variable names held,
        outermost first, across the enclosing function's scopes."""
        names, lock_vars = [], []
        active = False
        for s in self.stack:
            if s.kind == "function":
                active = True
                names, lock_vars = [], []
            if active:
                for canon, var in s.locks:
                    names.append(canon)
                    lock_vars.append(var)
        return names, lock_vars

    def _canonical_mutex(self, expr, local_types):
        e = expr.replace("this", "").replace("->", ".").strip()
        e = e.lstrip(".")
        parts = [p for p in re.split(r"[.]", e) if p]
        if not parts:
            return "<unknown>"
        base_m = re.match(r"[A-Za-z_]\w*", parts[0])
        base = base_m.group(0) if base_m else parts[0]
        last_m = re.match(r"[A-Za-z_]\w*", parts[-1])
        last = last_m.group(0) if last_m else parts[-1]
        cls = "::".join(self._record_chain())
        if not cls:
            fn = self._current_function()
            if fn is not None and fn.cls:
                cls = fn.cls
        if len(parts) == 1:
            owner = cls if cls else self.path
            return "%s::%s" % (owner, last)
        owner = local_types.get(base, "")
        if owner:
            return "%s::%s" % (owner, last)
        return "%s::%s.%s" % (cls if cls else self.path, base, last)

    # -- statement processing -------------------------------------------

    def _process_statement(self, seg):
        fn = self._current_function()
        if fn is None or not seg:
            return
        texts = [t.text for t in seg]
        local_types = getattr(fn, "_local_types", None)
        if local_types is None:
            local_types = fn._local_types = {}

        # Local declarations with a spelled type: `Type [&*] name = ...`
        # or `Type name(...)` / `Type name;` — captured so member
        # expressions like `slot.mtx` can resolve the owner type.
        m = self._match_local_decl(texts)
        if m:
            local_types[m[1]] = m[0]

        i = 0
        n = len(texts)
        while i < n:
            t = texts[i]
            # RAII acquisition: [exma::] MutexLock var(expr)
            if t == "MutexLock" and i + 2 < n and is_ident(texts[i + 1]) \
                    and texts[i + 2] == "(":
                var = texts[i + 1]
                close = self._match_group(texts, i + 2)
                expr = "".join(texts[i + 3:close])
                canon = self._canonical_mutex(expr, local_types)
                held, _vars = self._held()
                fn.acquires.append(
                    LockAcq(canon, seg[i].line, under=held))
                # register on the innermost function/block scope
                self.stack[-1].locks.append((canon, var))
                i = close + 1
                continue
            if is_ident(t) and i + 1 < n and texts[i + 1] == "(" \
                    and t not in CONTROL_KEYWORDS and t != "MutexLock":
                prev = texts[i - 1] if i > 0 else ""
                if is_ident(prev) and prev not in CONTROL_KEYWORDS:
                    # `Type name(...)`: declaration, not a call
                    i += 1
                    continue
                if prev in (">", "&", "*") and i >= 2 \
                        and is_ident(texts[i - 2]):
                    i += 1
                    continue
                receiver = ""
                qual = ""
                if prev in (".", "->"):
                    receiver = self._receiver_base(texts, i - 2)
                elif prev == "::":
                    qual = self._qual_chain(texts, i)
                close = self._match_group(texts, i + 1)
                args = " ".join(texts[i + 2:close])[:200]
                held, lock_vars = self._held()
                fn.calls.append(CallSite(
                    callee=t, line=seg[i].line, receiver=receiver,
                    callee_qual=qual, args=args, locks=held,
                    lock_vars=lock_vars))
                # manual lock()/unlock() on a mutex-shaped receiver
                if t == "lock" and prev in (".", "->") and receiver:
                    canon = self._canonical_mutex(receiver, local_types)
                    fn.acquires.append(
                        LockAcq(canon, seg[i].line, under=held))
                    self.stack[-1].locks.append((canon, "<manual>"))
                elif t == "unlock" and prev in (".", "->") and receiver:
                    canon = self._canonical_mutex(receiver, local_types)
                    for s in reversed(self.stack):
                        s.locks = [lk for lk in s.locks
                                   if lk[0] != canon]
                        if s.kind == "function":
                            break
                i += 1
                continue
            i += 1

    @staticmethod
    def _match_group(texts, open_i):
        depth = 0
        for j in range(open_i, len(texts)):
            if texts[j] == "(":
                depth += 1
            elif texts[j] == ")":
                depth -= 1
                if depth == 0:
                    return j
        return len(texts) - 1

    @staticmethod
    def _receiver_base(texts, j):
        """Identifier naming the immediate receiver ending at index j:
        `at . fut . get (` -> "fut"; `futures [ s ] . get (` ->
        "futures"."""
        while j >= 0 and texts[j] == "]":
            depth = 0
            while j >= 0:
                if texts[j] == "]":
                    depth += 1
                elif texts[j] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
        if j >= 0 and texts[j] == ")":
            depth = 0
            while j >= 0:
                if texts[j] == ")":
                    depth += 1
                elif texts[j] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            if j >= 0 and is_ident(texts[j]):
                return texts[j]
            return ""
        if j >= 0 and is_ident(texts[j]):
            return texts[j]
        return ""

    @staticmethod
    def _qual_chain(texts, callee_i):
        parts = [texts[callee_i]]
        i = callee_i - 1
        while i - 1 >= 0 and texts[i] == "::" and is_ident(texts[i - 1]):
            parts.insert(0, texts[i - 1])
            i -= 2
        return "::".join(parts)

    @staticmethod
    def _match_local_decl(texts):
        """(type, name) for `Type [&*]* name [=(;{]` declarations with
        a simple spelled type; None otherwise."""
        m = None
        i = 0
        n = len(texts)
        # only consider a declaration at statement start (possibly
        # after const/auto qualifiers)
        while i < n and texts[i] in ("const", "static", "constexpr"):
            i += 1
        if i >= n or not is_ident(texts[i]) \
                or texts[i] in CONTROL_KEYWORDS:
            return None
        type_parts = [texts[i]]
        i += 1
        while i + 1 < n and texts[i] == "::" and is_ident(texts[i + 1]):
            type_parts.append(texts[i + 1])
            i += 2
        # skip one template argument list
        if i < n and texts[i] == "<":
            depth = 0
            while i < n:
                if texts[i] == "<":
                    depth += 1
                elif texts[i] == ">":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        while i < n and texts[i] in ("&", "*", "const"):
            i += 1
        if i < n and is_ident(texts[i]) and i + 1 < n \
                and texts[i + 1] in ("=", ";") and texts[i] \
                not in CONTROL_KEYWORDS and type_parts[-1] != "auto":
            m = (type_parts[-1], texts[i])
        return m

    # -- record members --------------------------------------------------

    FIELD_SKIP_LEAD = {
        "using", "friend", "typedef", "template", "static", "public",
        "private", "protected", "struct", "class", "enum", "union",
        "operator", "explicit", "virtual", "~",
    }

    def _parse_member(self, record, seg):
        texts = [t.text for t in seg]
        # strip annotation macros and alignas groups wholesale
        cleaned = []
        i = 0
        while i < len(texts):
            t = texts[i]
            if (MACRO_NAME_RE.match(t) or t == "alignas") and \
                    i + 1 < len(texts) and texts[i + 1] == "(":
                i = self._match_group(texts, i + 1) + 1
                continue
            cleaned.append(t)
            i += 1
        texts = cleaned
        # drop access-specifier prefixes ("public :")
        while len(texts) >= 2 and texts[0] in ("public", "private",
                                               "protected") \
                and texts[1] == ":":
            texts = texts[2:]
        if not texts or texts[0] in self.FIELD_SKIP_LEAD:
            return
        # truncate at initializer
        depth = 0
        for i, t in enumerate(texts):
            if t in ("(", "[", "<", "{"):
                depth += 1
            elif t in (")", "]", ">", "}"):
                depth -= 1
            elif t == "=" and depth == 0:
                texts = texts[:i]
                break
        if not texts or "(" in texts:
            return  # member function (or too clever to be a field)
        if texts[0] == "mutable":
            texts = texts[1:]
        # array extents: trailing [N] groups
        array = ""
        while len(texts) >= 3 and texts[-1] == "]":
            j = len(texts) - 1
            depth = 0
            while j >= 0:
                if texts[j] == "]":
                    depth += 1
                elif texts[j] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            array = "[" + "".join(texts[j + 1:-1]) + "]" + array
            texts = texts[:j]
        if len(texts) < 2 or not is_ident(texts[-1]):
            return
        name = texts[-1]
        type_spelling = re.sub(r"\s*(::|[<>,])\s*", r"\1",
                               " ".join(texts[:-1]))
        if not any(is_ident(t) for t in texts[:-1]):
            return
        record.fields.append(Field(name, type_spelling, array))

    # -- main walk -------------------------------------------------------

    def parse(self):
        toks = self.toks
        seg_start = 0
        paren_depth = 0
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i].text
            if t == "(":
                paren_depth += 1
            elif t == ")":
                paren_depth = max(0, paren_depth - 1)
            elif paren_depth == 0 and t in (";", "{", "}"):
                seg = toks[seg_start:i]
                in_fn = self._current_function() is not None
                top = self.stack[-1] if self.stack else None
                if t == ";":
                    if in_fn:
                        self._process_statement(seg)
                    elif top is not None and top.kind == "record":
                        self._parse_member(top.func, top.stash + seg)
                        top.stash = []
                    seg_start = i + 1
                elif t == "{":
                    if in_fn:
                        self._process_statement(seg)
                        self.stack.append(_Scope("block"))
                    else:
                        self._push_braced_scope(seg, top)
                    seg_start = i + 1
                else:  # "}"
                    if in_fn:
                        self._process_statement(seg)
                    if self.stack:
                        closed = self.stack.pop()
                        if closed.kind == "record" and top is not None:
                            pass  # record already registered
                    seg_start = i + 1
            i += 1
        return SourceIR(self.path, self.functions, self.records,
                        self.suppressions, frontend="syntax")

    def _push_braced_scope(self, seg, top):
        texts = [t.text for t in seg]
        line = seg[0].line if seg else 1
        if "namespace" in texts:
            idx = texts.index("namespace")
            name = texts[idx + 1] if idx + 1 < len(texts) and \
                is_ident(texts[idx + 1]) else ""
            self.stack.append(_Scope("namespace", name))
            return
        if "enum" in texts:
            self.stack.append(_Scope("other"))
            return
        fn_sig = _parse_function_signature(seg)
        if fn_sig is not None:
            name, qual_parts = fn_sig
            cls_chain = self._record_chain() + qual_parts
            cls = "::".join(cls_chain)
            qual = "::".join(self._namespaces() + cls_chain + [name])
            func = FunctionIR(name, qual, cls, self.path, line)
            self.functions.append(func)
            self.stack.append(_Scope("function", name, func))
            return
        if any(k in texts for k in ("class", "struct", "union")):
            name = _record_name_from_segment(texts)
            if name:
                chain = self._record_chain() + [name]
                rec = RecordIR(
                    "::".join(chain),
                    "::".join(self._namespaces() + chain),
                    self.path, line)
                self.records.append(rec)
                scope = _Scope("record", name)
                scope.func = rec  # reuse the slot for the record
                self.stack.append(scope)
                return
        # Unclassified braces at record scope are member initializers:
        # stash the segment so the eventual ';' still parses the field.
        if top is not None and top.kind == "record":
            top.stash = top.stash + seg
        self.stack.append(_Scope("other"))


def parse_source(path, text):
    return Parser(path, text).parse()
