#!/usr/bin/env python3
"""exma_analyze — semantic analysis passes over the project AST/IR.

Four passes, each a ctest + CI gate (label: static-analysis):

    lock-order          no cycles in the mutex acquisition graph
    blocked-under-lock  no blocking call inside a critical section
    layering            include DAG matches declared module DEPS
    ondisk-abi          serialized layouts frozen in format_abi.lock

Usage:
    python3 tools/analyze/exma_analyze.py                   # all passes
    python3 tools/analyze/exma_analyze.py --pass lock-order
    python3 tools/analyze/exma_analyze.py --pass ondisk-abi --update
    python3 tools/analyze/exma_analyze.py --frontend clang --json out.json
    python3 tools/analyze/exma_analyze.py --pass lock-order FILE.cc ...

Frontends: `clang` lowers real `clang -ast-dump=json` output (CI;
version-pinned), `syntax` is the builtin parser (no toolchain needed —
what the ctest gates run), `auto` picks clang when available. Findings
print like compiler diagnostics; exit code is 1 when any finding
survives suppressions, 2 on infrastructure errors.

Suppress a deliberate site with `// analyze: allow(<pass>, <reason>)`
on the finding line or the line above. The linter's
`analyze-allow-reason` rule rejects reason-less suppressions.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compiledb  # noqa: E402
import cxxparse  # noqa: E402
import frontends  # noqa: E402
import pass_blocked  # noqa: E402
import pass_layering  # noqa: E402
import pass_lock_order  # noqa: E402
import pass_ondisk_abi  # noqa: E402
from project import Project, iter_source_files  # noqa: E402

PASSES = {
    "lock-order": pass_lock_order,
    "blocked-under-lock": pass_blocked,
    "layering": pass_layering,
    "ondisk-abi": pass_ondisk_abi,
}


def repo_root_default():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def load_sources(proj, root, only_files):
    """Read source texts + suppressions into the project. CMakeLists
    are loaded too (the layering pass reads declared DEPS)."""
    rels = []
    if only_files:
        for f in only_files:
            rels.append(os.path.relpath(os.path.abspath(f), root))
    else:
        rels = iter_source_files(root)
        src = os.path.join(root, "src")
        if os.path.isdir(src):
            for d in sorted(os.listdir(src)):
                cml = os.path.join(src, d, "CMakeLists.txt")
                if os.path.isfile(cml):
                    rels.append(os.path.relpath(cml, root))
    for rel in rels:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print("exma_analyze: cannot read %s: %s" % (rel, e),
                  file=sys.stderr)
            sys.exit(2)
        proj.add_source_text(rel, text,
                             cxxparse.scan_suppressions(text))


def lower_syntax(proj, cache):
    for rel, text in sorted(proj.sources.items()):
        if rel.endswith("CMakeLists.txt"):
            continue
        proj.add_ir(frontends.syntax_ir(
            os.path.join(proj.root, rel), rel, text, cache))


def lower_clang(proj, args, cache):
    clang, version = frontends.resolve_clang(
        require_major=args.require_clang_major)
    print("exma_analyze: frontend clang %s (%s)" % (version, clang))
    entries = compiledb.load(args.build)
    src_prefix = os.path.join(os.path.abspath(proj.root), "src") + os.sep
    tus = [e for e in entries
           if os.path.abspath(e.file).startswith(src_prefix)]
    if not tus:
        print("exma_analyze: no src/ TUs in %s/compile_commands.json"
              % args.build, file=sys.stderr)
        sys.exit(2)
    headers = [os.path.join(proj.root, r) for r in proj.sources
               if r.endswith(".hh")]
    hdr_digest = frontends.headers_digest(headers)
    for e in tus:
        proj.add_ir(frontends.clang_tu_ir(
            clang, version, e, os.path.abspath(proj.root),
            hdr_digest, cache))
    return version


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="exma_analyze",
        description="semantic analysis passes over the exma sources")
    ap.add_argument("--root", default=repo_root_default(),
                    help="project root (default: the repo)")
    ap.add_argument("--build", default=None,
                    help="build dir with compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--pass", dest="passes", action="append",
                    choices=sorted(PASSES) + ["all"],
                    help="pass to run (repeatable; default: all)")
    ap.add_argument("--frontend", choices=("auto", "clang", "syntax"),
                    default="auto")
    ap.add_argument("--require-clang-major", type=int, default=None,
                    help="fail unless clang has this major version "
                         "(the CI pin)")
    ap.add_argument("--json", metavar="FILE",
                    help="also write findings as JSON")
    ap.add_argument("--update", action="store_true",
                    help="ondisk-abi: regenerate format_abi.lock")
    ap.add_argument("--no-cache", action="store_true",
                    help="disable the per-TU IR cache")
    ap.add_argument("--cache-dir", default=None,
                    help="IR cache location "
                         "(default: <build>/analyze-cache)")
    ap.add_argument("--list-passes", action="store_true")
    ap.add_argument("files", nargs="*",
                    help="restrict analysis to these sources "
                         "(fixture gates)")
    args = ap.parse_args(argv)

    if args.list_passes:
        for name in sorted(PASSES):
            print(name)
        return 0

    root = os.path.abspath(args.root)
    args.build = args.build or os.path.join(root, "build")
    wanted = args.passes or ["all"]
    if "all" in wanted:
        wanted = sorted(PASSES)

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(args.build,
                                                   "analyze-cache")
        cache = frontends.IRCache(cache_dir)

    proj = Project(root)
    load_sources(proj, root, args.files)

    frontend = args.frontend
    if frontend == "auto":
        try:
            frontends.resolve_clang(
                require_major=args.require_clang_major)
            frontend = "clang"
        except frontends.ClangNotFound:
            frontend = "syntax"
    needs_ir = any(p in wanted for p in
                   ("lock-order", "blocked-under-lock", "ondisk-abi"))
    if needs_ir:
        if frontend == "clang" and not args.files:
            try:
                lower_clang(proj, args, cache)
            except (frontends.ClangNotFound,
                    frontends.ClangVersionMismatch,
                    FileNotFoundError, RuntimeError) as e:
                print("exma_analyze: %s" % e, file=sys.stderr)
                return 2
        else:
            # explicit file lists always use the syntax frontend (a
            # fixture TU has no compile-db entry)
            lower_syntax(proj, cache)

    findings = []
    for name in wanted:
        mod = PASSES[name]
        if name == "ondisk-abi":
            found = mod.run(proj, update=args.update,
                            build_dir=args.build)
        else:
            found = mod.run(proj)
        findings.extend(found)

    for f in findings:
        print(str(f))
    if cache is not None and (cache.hits or cache.misses):
        print("exma_analyze: IR cache: %d hit(s), %d miss(es)"
              % (cache.hits, cache.misses))
    if args.json:
        payload = {
            "frontend": frontend,
            "passes": wanted,
            "findings": [f.to_dict() for f in findings],
        }
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
    if findings:
        print("exma_analyze: %d finding(s) across %s"
              % (len(findings), ", ".join(wanted)), file=sys.stderr)
        return 1
    print("exma_analyze: clean (%s; frontend %s)"
          % (", ".join(wanted), frontend))
    return 0


if __name__ == "__main__":
    sys.exit(main())
