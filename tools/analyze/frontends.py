"""Frontend selection, clang execution, and the per-TU IR cache.

Two frontends produce the same IR (ir.py):

* "clang"  — runs `clang -Xclang -ast-dump=json -fsyntax-only` per TU
  with the flags from compile_commands.json and lowers the dump
  (clangjson.py). Preferred when clang is available; CI pins the
  major version so analyzer output cannot drift across runner images.
* "syntax" — the pure-Python parser (cxxparse.py), one IR per source
  file, no toolchain needed. This is what the ctest gates run.

Lowered IR is cached per TU under <build>/analyze-cache/, keyed on the
TU source hash + a digest of every project header + flags + frontend
version (raw AST dumps are hundreds of MB; the IR is a few KB, so we
cache after lowering, which is also what CI restores).
"""

import hashlib
import json
import os
import re
import subprocess

import compiledb
import cxxparse
from clangjson import lower_tu
from ir import SourceIR

# Bump when the lowering changes meaning; invalidates every cache.
LOWERING_VERSION = "1"

CLANG_CANDIDATES = ("clang++", "clang", "clang++-18", "clang-18",
                    "clang++-17", "clang++-16", "clang++-15",
                    "clang++-14")


class ClangNotFound(RuntimeError):
    pass


class ClangVersionMismatch(RuntimeError):
    pass


def resolve_clang(require_major=None, explicit=None):
    """(path, version_string). `require_major` enforces the CI pin
    with an actionable error; `explicit` (or $EXMA_ANALYZE_CLANG)
    overrides the search list."""
    explicit = explicit or os.environ.get("EXMA_ANALYZE_CLANG")
    candidates = (explicit,) if explicit else CLANG_CANDIDATES
    tried = []
    for cand in candidates:
        ver = _clang_version(cand)
        if ver is None:
            tried.append(cand)
            continue
        if require_major is not None and ver[0] != require_major:
            raise ClangVersionMismatch(
                "analyzer requires clang major version %d but %r is "
                "%d.%d — AST output drifts across majors, so the "
                "version is pinned; install clang-%d or adjust "
                "--require-clang-major / the CI pin deliberately"
                % (require_major, cand, ver[0], ver[1], require_major))
        return cand, "%d.%d" % (ver[0], ver[1])
    raise ClangNotFound(
        "no clang found (tried: %s); use --frontend syntax or set "
        "EXMA_ANALYZE_CLANG" % ", ".join(tried))


def _clang_version(cand):
    try:
        out = subprocess.run([cand, "--version"], capture_output=True,
                             text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    m = re.search(r"clang version (\d+)\.(\d+)", out.stdout)
    if not m:
        return None
    return (int(m.group(1)), int(m.group(2)))


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def _sha(*parts):
    h = hashlib.sha256()
    for p in parts:
        h.update(p if isinstance(p, bytes) else p.encode())
        h.update(b"\x00")
    return h.hexdigest()


def headers_digest(paths):
    """One digest over every project header, sorted; a header edit
    invalidates all TU caches (TU dumps include headers)."""
    h = hashlib.sha256()
    for p in sorted(paths):
        h.update(p.encode())
        try:
            with open(p, "rb") as f:
                h.update(f.read())
        except OSError:
            pass
        h.update(b"\x00")
    return h.hexdigest()


class IRCache:
    def __init__(self, cache_dir):
        self.dir = cache_dir
        self.hits = 0
        self.misses = 0

    def get(self, key):
        if not self.dir:
            return None
        path = os.path.join(self.dir, key + ".json")
        try:
            with open(path, encoding="utf-8") as f:
                ir = SourceIR.loads(f.read())
            self.hits += 1
            return ir
        except (OSError, ValueError, KeyError):
            return None

    def put(self, key, ir):
        if not self.dir:
            return
        self.misses += 1
        os.makedirs(self.dir, exist_ok=True)
        tmp = os.path.join(self.dir, key + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(ir.dumps())
        os.replace(tmp, os.path.join(self.dir, key + ".json"))


# ---------------------------------------------------------------------------
# Frontends
# ---------------------------------------------------------------------------

def syntax_ir(path, rel, text, cache=None):
    key = None
    if cache is not None:
        key = _sha("syntax", LOWERING_VERSION, rel, text)
        hit = cache.get(key)
        if hit is not None:
            return hit
    ir = cxxparse.parse_source(rel, text)
    if cache is not None:
        cache.put(key, ir)
    return ir


def clang_tu_ir(clang, version, entry, root, hdr_digest, cache=None):
    """Run clang over one compile-db entry and lower the dump."""
    rel = os.path.relpath(entry.file, root)
    with open(entry.file, encoding="utf-8", errors="replace") as f:
        text = f.read()
    key = None
    if cache is not None:
        key = _sha("clang", version, LOWERING_VERSION, rel, text,
                   hdr_digest, " ".join(entry.frontend_flags()))
        hit = cache.get(key)
        if hit is not None:
            return hit
    cmd = [clang, "-x", "c++", "-fsyntax-only", "-Xclang",
           "-ast-dump=json", "-Wno-everything"]
    cmd += entry.frontend_flags()
    cmd.append(entry.file)
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          cwd=entry.directory)
    if proc.returncode != 0 or not proc.stdout.strip():
        raise RuntimeError(
            "clang AST dump failed for %s:\n%s"
            % (rel, proc.stderr.strip()[:2000]))
    ast = json.loads(proc.stdout)
    ir = lower_tu(rel, ast, root,
                  suppressions=cxxparse.scan_suppressions(text),
                  version=version)
    if cache is not None:
        cache.put(key, ir)
    return ir
